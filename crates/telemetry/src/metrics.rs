//! The metrics registry: monotonic counters, gauges, and log-bucketed
//! histograms, lock-free on the hot path.
//!
//! Call sites fetch a handle once ([`Registry::counter`] /
//! [`Registry::gauge`] / [`Registry::histogram`] — the only locked step)
//! and then update it with single relaxed atomic RMWs through the
//! `gpnm-sync` facade. Series are identified Prometheus-style: a base name
//! plus optional `{key="value"}` labels; [`Registry::render_prometheus`]
//! emits the standard text exposition format.

use std::collections::BTreeMap;

use gpnm_sync::atomic::{AtomicU64, Ordering};
use gpnm_sync::{Arc, Mutex};

/// A monotonic counter. Increments wrap on `u64` overflow (after 2^64
/// events; Prometheus rate() treats the wrap as a reset).
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter (wrapping on overflow).
    #[inline]
    pub fn add(&self, n: u64) {
        // RELAXED: monitoring counter — no ordering with other data; the
        // exporter reads a lossy snapshot by design.
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // RELAXED: monitoring snapshot.
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (lane occupancy, cache bias).
/// Stored as `f64` bits in one atomic word.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        // RELAXED: monitoring value — last write wins, no ordering needed.
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative). Lock-free CAS loop on the f64 bits.
    pub fn add(&self, delta: f64) {
        // RELAXED: monitoring value — the CAS only needs atomicity of the
        // read-modify-write, not ordering with other data.
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            // RELAXED: as above — atomicity only.
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // RELAXED: monitoring snapshot.
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: one for zero plus one per power of two up
/// to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` observations (typically nanoseconds).
///
/// Bucket 0 holds exact zeros; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. Percentiles interpolate linearly inside the matched
/// bucket, so the error is bounded by the bucket width (a factor of 2).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// The bucket index covering `v`: 0 for 0, else `floor(log2 v) + 1`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last bucket).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        // RELAXED: monitoring counters — exporters read lossy snapshots;
        // no ordering with other data is required (all three increments).
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        // RELAXED: monitoring snapshot.
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (wrapping).
    pub fn sum(&self) -> u64 {
        // RELAXED: monitoring snapshot.
        self.sum.load(Ordering::Relaxed)
    }

    /// Snapshot of the per-bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        // RELAXED: monitoring snapshot; buckets may be mid-update, the
        // rendered cumulative distribution is still monotone.
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), interpolated within the matched
    /// log bucket. Returns 0.0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 && cum + c >= target {
                if i == 0 {
                    return 0.0;
                }
                let lower = (1u64 << (i - 1)) as f64;
                let upper = bucket_upper(i) as f64;
                let into = (target - cum) as f64 / c as f64;
                return lower + (upper - lower) * into;
            }
            cum += c;
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1) as f64
    }
}

/// A registered series: one of the three metric kinds.
#[derive(Clone)]
enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

struct Series {
    base: String,
    /// Rendered label pairs without braces (`shard="0",arm="rematch"`), or
    /// empty.
    labels: String,
    slot: Slot,
}

/// The metrics registry. One [`global`] instance serves the whole process
/// (matching the Prometheus process-scrape model); tests may build private
/// ones.
#[derive(Default)]
pub struct Registry {
    series: Mutex<BTreeMap<String, Series>>,
}

fn series_key(base: &str, labels: &[(&str, &str)]) -> (String, String) {
    let rendered = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<_>>()
        .join(",");
    let key = if rendered.is_empty() {
        base.to_string()
    } else {
        format!("{base}{{{rendered}}}")
    };
    (key, rendered)
}

impl Registry {
    /// A fresh, empty registry (tests; production uses [`global`]).
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        base: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Slot,
    ) -> Slot {
        let (key, rendered) = series_key(base, labels);
        let mut map = self.series.lock().expect("metrics registry poisoned");
        map.entry(key)
            .or_insert_with(|| Series {
                base: base.to_string(),
                labels: rendered,
                slot: make(),
            })
            .slot
            .clone()
    }

    /// Get or register the counter `base` with `labels`. Panics if the
    /// series exists with a different kind (a programming error).
    pub fn counter_with(&self, base: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(base, labels, || Slot::Counter(Arc::new(Counter::default()))) {
            Slot::Counter(c) => c,
            other => panic!("metric {base} already registered as a {}", other.kind()),
        }
    }

    /// [`Registry::counter_with`] without labels.
    pub fn counter(&self, base: &str) -> Arc<Counter> {
        self.counter_with(base, &[])
    }

    /// Get or register the gauge `base` with `labels`.
    pub fn gauge_with(&self, base: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(base, labels, || Slot::Gauge(Arc::new(Gauge::default()))) {
            Slot::Gauge(g) => g,
            other => panic!("metric {base} already registered as a {}", other.kind()),
        }
    }

    /// [`Registry::gauge_with`] without labels.
    pub fn gauge(&self, base: &str) -> Arc<Gauge> {
        self.gauge_with(base, &[])
    }

    /// Get or register the histogram `base` with `labels`.
    pub fn histogram_with(&self, base: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.get_or_insert(base, labels, || {
            Slot::Histogram(Arc::new(Histogram::default()))
        }) {
            Slot::Histogram(h) => h,
            other => panic!("metric {base} already registered as a {}", other.kind()),
        }
    }

    /// [`Registry::histogram_with`] without labels.
    pub fn histogram(&self, base: &str) -> Arc<Histogram> {
        self.histogram_with(base, &[])
    }

    /// Render every series in Prometheus text exposition format: one
    /// `# TYPE` line per base name, then the sample lines. Histograms emit
    /// cumulative `_bucket{le=...}` lines (up to the highest non-empty
    /// bucket, then `+Inf`), `_sum`, and `_count`.
    pub fn render_prometheus(&self) -> String {
        let map = self.series.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        let mut last_base: Option<String> = None;
        for series in map.values() {
            if last_base.as_deref() != Some(series.base.as_str()) {
                out.push_str(&format!("# TYPE {} {}\n", series.base, series.slot.kind()));
                last_base = Some(series.base.clone());
            }
            let labeled = |extra: &str| -> String {
                match (series.labels.is_empty(), extra.is_empty()) {
                    (true, true) => String::new(),
                    (true, false) => format!("{{{extra}}}"),
                    (false, true) => format!("{{{}}}", series.labels),
                    (false, false) => format!("{{{},{extra}}}", series.labels),
                }
            };
            match &series.slot {
                Slot::Counter(c) => {
                    out.push_str(&format!("{}{} {}\n", series.base, labeled(""), c.get()));
                }
                Slot::Gauge(g) => {
                    let v = g.get();
                    // The text format technically allows NaN but every
                    // consumer downstream (and our CI validator) treats it
                    // as corruption; render a sane 0 instead.
                    let v = if v.is_finite() { v } else { 0.0 };
                    out.push_str(&format!("{}{} {v}\n", series.base, labeled("")));
                }
                Slot::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let highest = counts
                        .iter()
                        .rposition(|&c| c > 0)
                        .unwrap_or(0)
                        .min(HISTOGRAM_BUCKETS - 2);
                    let mut cum = 0u64;
                    for (i, &c) in counts.iter().enumerate().take(highest + 1) {
                        cum += c;
                        out.push_str(&format!(
                            "{}_bucket{} {cum}\n",
                            series.base,
                            labeled(&format!("le=\"{}\"", bucket_upper(i)))
                        ));
                    }
                    let total: u64 = counts.iter().sum();
                    out.push_str(&format!(
                        "{}_bucket{} {total}\n",
                        series.base,
                        labeled("le=\"+Inf\"")
                    ));
                    out.push_str(&format!("{}_sum{} {}\n", series.base, labeled(""), h.sum()));
                    out.push_str(&format!("{}_count{} {total}\n", series.base, labeled("")));
                }
            }
        }
        out
    }

    /// A human summary of every histogram: count, p50/p90/p99, and mean —
    /// the bottom half of the `--trace-summary` output.
    pub fn histogram_summary(&self) -> String {
        let map = self.series.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (key, series) in map.iter() {
            if let Slot::Histogram(h) = &series.slot {
                let count = h.count();
                if count == 0 {
                    continue;
                }
                let mean = h.sum() as f64 / count as f64;
                out.push_str(&format!(
                    "{key}: count {count}, mean {:.0}, p50 {:.0}, p90 {:.0}, p99 {:.0}\n",
                    mean,
                    h.percentile(0.50),
                    h.percentile(0.90),
                    h.percentile(0.99),
                ));
            }
        }
        out
    }
}

/// The process-global registry (the Prometheus scrape unit).
pub fn global() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Render the global registry in Prometheus text exposition format — the
/// `--metrics-out` payload and the future serving endpoint's body.
pub fn metrics_text() -> String {
    global().render_prometheus()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        for k in 0..63 {
            let v = 1u64 << k;
            assert_eq!(
                bucket_index(v),
                k as usize + 1,
                "2^{k} lands one past 2^{k}-1"
            );
            assert_eq!(
                bucket_index(v - 1),
                if v == 1 { 0 } else { k as usize },
                "2^{k}-1"
            );
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn percentiles_interpolate_within_log_buckets() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        // A log-bucketed estimate is within the bucket (factor-of-2 bound)
        // of the exact quantile.
        let p50 = h.percentile(0.50);
        assert!(
            (256.0..=511.0).contains(&p50),
            "p50 {p50} outside its bucket"
        );
        let p90 = h.percentile(0.90);
        assert!(
            (512.0..=1023.0).contains(&p90),
            "p90 {p90} outside its bucket"
        );
        let p99 = h.percentile(0.99);
        assert!(
            (512.0..=1023.0).contains(&p99),
            "p99 {p99} outside its bucket"
        );
        assert!(p50 <= p90 && p90 <= p99, "quantiles must be monotone");
    }

    #[test]
    fn percentile_edge_cases() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.5), 0.0, "empty histogram");
        h.observe(0);
        assert_eq!(h.percentile(0.99), 0.0, "all-zero observations");
        let h = Histogram::default();
        h.observe(42);
        let p = h.percentile(0.5);
        assert!(
            (32.0..=63.0).contains(&p),
            "single sample stays in its bucket"
        );
    }

    #[test]
    fn counter_overflow_wraps() {
        let c = Counter::default();
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
        c.add(3);
        // Documented wrapping semantics: scrapers see a reset, not a panic.
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn gauge_set_add_get() {
        let g = Gauge::default();
        g.set(2.5);
        g.add(1.0);
        g.add(-0.5);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let r = Registry::new();
        r.counter("gpnm_ticks_total").add(5);
        r.counter_with("gpnm_decisions_total", &[("arm", "rematch")])
            .add(2);
        r.counter_with("gpnm_decisions_total", &[("arm", "per-update")])
            .inc();
        r.gauge("gpnm_bias").set(1.25);
        let h = r.histogram("gpnm_tick_ns");
        h.observe(3);
        h.observe(900);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE gpnm_ticks_total counter\ngpnm_ticks_total 5\n"));
        assert!(text.contains("gpnm_decisions_total{arm=\"rematch\"} 2"));
        assert!(text.contains("gpnm_decisions_total{arm=\"per-update\"} 1"));
        // One TYPE line for the labeled family, not one per series.
        assert_eq!(text.matches("# TYPE gpnm_decisions_total").count(), 1);
        assert!(text.contains("# TYPE gpnm_bias gauge\ngpnm_bias 1.25\n"));
        assert!(text.contains("gpnm_tick_ns_bucket{le=\"3\"} 1"));
        assert!(text.contains("gpnm_tick_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("gpnm_tick_ns_sum 903"));
        assert!(text.contains("gpnm_tick_ns_count 2"));
        // Cumulative buckets are monotone nondecreasing.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("gpnm_tick_ns_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
        }
    }

    #[test]
    fn same_handle_comes_back_for_same_series() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
