//! Loom model tests for the worker pool's queue/steal/latch protocol.
//!
//! Build with `RUSTFLAGS="--cfg gpnm_loom"`; in ordinary builds this file
//! compiles to nothing. Each test explores every interleaving (up to the
//! `LOOM_MAX_PREEMPTIONS` preemption bound) of a small pool run, checking
//! the no-lost-task / no-double-pop invariant: every spawned task runs
//! exactly once, no matter how workers, stealers, and the helping caller
//! interleave.
#![cfg(gpnm_loom)]

use gpnm_pool::WorkerPool;
use gpnm_sync::atomic::{AtomicUsize, Ordering};
use gpnm_sync::Arc;

/// One worker plus the helping caller: both pull from the deques, and the
/// caller races the worker for the same queue (`pop` front vs `pop_any`).
/// Exactly-once execution must hold in every schedule.
#[test]
fn scope_runs_every_task_exactly_once() {
    loom::model(|| {
        let pool = WorkerPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.scope(|scope| {
            for _ in 0..2 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    // RELAXED: the scope's latch (a mutex) orders this
                    // against the final read; the counter needs atomicity
                    // only.
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // RELAXED: reading after scope() returned — the latch synchronized.
        assert_eq!(counter.load(Ordering::Relaxed), 2, "task lost or run twice");
        drop(pool); // shutdown + join under the model: the worker must exit
    });
}

/// Two workers, two queues: `push` deals tasks round-robin, so each worker
/// may find its own queue empty and steal from the other's back — the
/// steal path must neither lose a task nor double-pop it.
#[test]
fn steal_path_is_exactly_once() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        pool.scope(|scope| {
            for _ in 0..2 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    // RELAXED: see scope_runs_every_task_exactly_once.
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // RELAXED: reading after scope() returned — the latch synchronized.
        assert_eq!(
            counter.load(Ordering::Relaxed),
            2,
            "steal lost or duplicated a task"
        );
    });
}

/// Shutdown handshake: dropping an idle pool must wake the parked worker
/// and join it in every interleaving (no lost shutdown notification).
#[test]
fn drop_joins_idle_worker() {
    loom::model(|| {
        let pool = WorkerPool::new(1);
        drop(pool);
    });
}
