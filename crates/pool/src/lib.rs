//! A persistent, work-stealing worker pool with a scoped-submit API.
//!
//! The repair hot paths of UA-GPNM (parallel BFS-row recomputation, the §V
//! per-partition APSP, row composition) were previously parallelized with
//! `crossbeam::thread::scope`, which spawns and joins OS threads *per
//! batch*. Thread spawn costs tens of microseconds; a DER-II batch issues
//! many small parallel sections, so spawn/join dominated the parallel win
//! on the paper's update scales (ROADMAP: "evaluate a persistent worker
//! pool"). This crate keeps one set of workers alive for the process
//! lifetime and hands out borrowed-data scopes over them:
//!
//! ```
//! use gpnm_pool::WorkerPool;
//!
//! let data = vec![1u32, 2, 3, 4, 5, 6, 7, 8];
//! let sums = std::sync::Mutex::new(Vec::new());
//! WorkerPool::global().scope(|scope| {
//!     for chunk in data.chunks(4) {
//!         let sums = &sums;
//!         scope.spawn(move || sums.lock().unwrap().push(chunk.iter().sum::<u32>()));
//!     }
//! });
//! assert_eq!(sums.into_inner().unwrap().iter().sum::<u32>(), 36);
//! ```
//!
//! Design points:
//!
//! * **Persistent workers, scoped borrows.** Tasks may borrow from the
//!   caller's stack frame: [`WorkerPool::scope`] does not return until every
//!   task spawned in it has finished, which makes the internal lifetime
//!   erasure sound (the same argument `std::thread::scope` makes).
//! * **Work stealing.** Each worker owns a deque; submissions are dealt
//!   round-robin, a worker drains its own deque from the front and steals
//!   from the back of the longest other deque when empty. One pool-wide
//!   lock arbitrates — tasks on these paths are chunk-sized (dozens of BFS
//!   rows), so queue traffic is far too low for the lock to contend; under
//!   that single lock the topology schedules like a global FIFO, and the
//!   per-worker deques are the seam for per-deque locks (or lock-free
//!   Chase–Lev deques) if queue traffic ever grows fine-grained enough to
//!   contend.
//! * **The caller helps.** While waiting for its tasks, the scoping thread
//!   executes queued tasks itself. A pool with zero workers degenerates to
//!   serial execution on the caller, nested scopes cannot deadlock the
//!   pool, and `available_parallelism` minus one workers plus the caller
//!   saturates the machine without oversubscribing it.
//! * **Nesting, including from worker context.** A task running *on a pool
//!   worker* may open its own [`WorkerPool::scope`] on the same pool — the
//!   shape a sharded tick produces (shard tasks fan out per-pattern refresh
//!   scopes). This cannot deadlock: a scope's waiter executes queued tasks
//!   itself before sleeping, so every blocked waiter either drains its own
//!   pending work or is waiting on a strictly deeper scope, and the
//!   innermost blocked scope always has its tasks queued where its waiter
//!   can reach them.
//! * **Panic propagation.** A panicking task poisons its scope; the scope
//!   re-panics on the submitting thread after all sibling tasks finish,
//!   matching the `crossbeam::thread::scope(...).expect(...)` behavior the
//!   call sites relied on.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use gpnm_sync::atomic::{AtomicBool, Ordering};
use gpnm_sync::thread::JoinHandle;
use gpnm_sync::{Arc, Condvar, Mutex};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// A type-erased, lifetime-erased task. Erasure to `'static` is sound
/// because [`WorkerPool::scope`] joins every task it submitted before the
/// borrowed environment can go out of scope.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Pool telemetry: cumulative scope/task counters and the live
/// `gpnm_pool_active_tasks` gauge (read against `gpnm_pool_lanes` for
/// lane occupancy). Compiled out under loom model checking — the metrics
/// registry lives in process-wide statics, and loom state must not leak
/// across model iterations.
#[cfg(not(gpnm_loom))]
mod pool_metrics {
    use super::{Arc, OnceLock};

    /// Cached handles into the global metrics registry — resolved once so
    /// the per-task cost is a relaxed atomic bump, not a registry lookup.
    struct PoolMetrics {
        tasks: Arc<gpnm_telemetry::Counter>,
        scopes: Arc<gpnm_telemetry::Counter>,
        active: Arc<gpnm_telemetry::Gauge>,
    }

    fn metrics() -> &'static PoolMetrics {
        static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let registry = gpnm_telemetry::global();
            PoolMetrics {
                tasks: registry.counter("gpnm_pool_tasks_total"),
                scopes: registry.counter("gpnm_pool_scopes_total"),
                active: registry.gauge("gpnm_pool_active_tasks"),
            }
        })
    }

    pub fn scope_opened() {
        metrics().scopes.inc();
    }

    pub fn task_submitted() {
        metrics().tasks.inc();
    }

    pub fn task_started() {
        metrics().active.add(1.0);
    }

    pub fn task_finished() {
        metrics().active.add(-1.0);
    }

    pub fn pool_sized(lanes: usize) {
        gpnm_telemetry::global()
            .gauge("gpnm_pool_lanes")
            .set(lanes as f64);
    }
}

/// No-op stand-in under `--cfg gpnm_loom`; see the real module above.
#[cfg(gpnm_loom)]
mod pool_metrics {
    pub fn scope_opened() {}
    pub fn task_submitted() {}
    pub fn task_started() {}
    pub fn task_finished() {}
    pub fn pool_sized(_lanes: usize) {}
}

/// Queues and lifecycle flags shared between the pool handle and workers.
struct Shared {
    state: Mutex<State>,
    /// Signaled when a task is pushed or shutdown begins.
    work_available: Condvar,
}

struct State {
    /// One deque per worker. With zero workers a single deque serves the
    /// helping caller.
    queues: Vec<VecDeque<Task>>,
    /// Round-robin dealing cursor.
    next: usize,
    shutdown: bool,
}

impl State {
    /// Pop a task for worker `home`: own deque front first (LIFO-ish cache
    /// warmth does not matter for chunk-sized tasks; FIFO keeps fairness),
    /// then steal from the back of the longest other deque.
    fn pop(&mut self, home: usize) -> Option<Task> {
        if let Some(task) = self.queues.get_mut(home).and_then(VecDeque::pop_front) {
            return Some(task);
        }
        let victim = (0..self.queues.len())
            .filter(|&j| j != home)
            .max_by_key(|&j| self.queues[j].len())?;
        self.queues[victim].pop_back()
    }

    /// Pop from any deque — used by the helping caller, which has no home.
    fn pop_any(&mut self) -> Option<Task> {
        self.queues.iter_mut().find_map(VecDeque::pop_front)
    }
}

/// Completion latch of one [`WorkerPool::scope`] call.
struct ScopeLatch {
    /// Tasks submitted and not yet finished.
    pending: Mutex<usize>,
    /// Signaled when `pending` reaches zero.
    done: Condvar,
    /// Set if any task panicked.
    panicked: AtomicBool,
}

impl ScopeLatch {
    fn new() -> Arc<Self> {
        Arc::new(ScopeLatch {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        })
    }
}

/// A persistent pool of worker threads. See the crate docs for the design.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawn a pool with `workers` persistent worker threads. `0` is valid:
    /// tasks then run on the thread that calls [`WorkerPool::scope`].
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                // At least one deque so a zero-worker pool can still queue.
                queues: (0..workers.max(1)).map(|_| VecDeque::new()).collect(),
                next: 0,
                shutdown: false,
            }),
            work_available: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                gpnm_sync::thread::spawn_named(&format!("gpnm-pool-{i}"), move || {
                    worker_loop(i, &shared)
                })
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
            threads: workers,
        }
    }

    /// The process-wide pool, created on first use with
    /// `available_parallelism - 1` workers (the scoping caller is the
    /// remaining lane). All repair paths share it, so parallel sections
    /// never oversubscribe each other.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let lanes = std::thread::available_parallelism().map_or(1, usize::from);
            let pool = WorkerPool::new(lanes.saturating_sub(1));
            pool_metrics::pool_sized(pool.lanes());
            pool
        })
    }

    /// Number of persistent worker threads (the caller lane not included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Parallel lanes a scope can use: the workers plus the helping caller.
    pub fn lanes(&self) -> usize {
        self.threads + 1
    }

    /// Run `f` with a scope whose spawned tasks may borrow from the current
    /// stack frame. Returns once `f` *and every task it spawned* have
    /// finished; panics if any task panicked.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope PoolScope<'scope, 'env>) -> R,
    {
        pool_metrics::scope_opened();
        let scope = PoolScope {
            pool: self,
            latch: ScopeLatch::new(),
            _env: PhantomData,
        };
        // Even if `f` itself panics, already-spawned tasks still borrow the
        // environment: the wait below must happen before unwinding past it.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.wait(&scope.latch);
        match result {
            Ok(value) => {
                if scope.latch.panicked.load(Ordering::Acquire) {
                    panic!("worker pool task panicked");
                }
                value
            }
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Block until `latch` drains, executing queued tasks while waiting.
    fn wait(&self, latch: &Arc<ScopeLatch>) {
        loop {
            {
                let pending = latch.pending.lock().expect("latch lock");
                if *pending == 0 {
                    return;
                }
            }
            // Help: run any queued task (ours or a sibling scope's — both
            // make progress). If nothing is queued, our remaining tasks are
            // running on workers; sleep until one finishes.
            let task = self.shared.state.lock().expect("pool lock").pop_any();
            match task {
                Some(task) => task(),
                None => {
                    let pending = latch.pending.lock().expect("latch lock");
                    if *pending > 0 {
                        drop(latch.done.wait(pending).expect("latch wait"));
                    }
                }
            }
        }
    }

    /// Deal an erased task to the next deque and wake a worker.
    fn push(&self, task: Task) {
        let mut state = self.shared.state.lock().expect("pool lock");
        let slot = state.next;
        state.next = (slot + 1) % state.queues.len();
        state.queues[slot].push_back(task);
        drop(state);
        self.shared.work_available.notify_one();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.state.lock().expect("pool lock").shutdown = true;
        self.shared.work_available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(home: usize, shared: &Shared) {
    let mut state = shared.state.lock().expect("pool lock");
    loop {
        if let Some(task) = state.pop(home) {
            drop(state);
            task(); // panics are caught inside the task wrapper
            state = shared.state.lock().expect("pool lock");
            continue;
        }
        if state.shutdown {
            return;
        }
        state = shared.work_available.wait(state).expect("pool wait");
    }
}

/// Handle for submitting borrowed-data tasks; see [`WorkerPool::scope`].
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    latch: Arc<ScopeLatch>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> PoolScope<'_, 'env> {
    /// Queue `f` on the pool. It starts as soon as a worker (or the waiting
    /// caller) is free and is guaranteed finished when the enclosing
    /// [`WorkerPool::scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        *self.latch.pending.lock().expect("latch lock") += 1;
        pool_metrics::task_submitted();
        let latch = Arc::clone(&self.latch);
        let wrapper: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            pool_metrics::task_started();
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                latch.panicked.store(true, Ordering::Release);
            }
            pool_metrics::task_finished();
            let mut pending = latch.pending.lock().expect("latch lock");
            *pending -= 1;
            if *pending == 0 {
                latch.done.notify_all();
            }
        });
        // SAFETY: the enclosing `WorkerPool::scope` call blocks until this
        // task has run to completion (the latch above), so every borrow of
        // `'env` inside `wrapper` is live for as long as the task can
        // observe it. This is the lifetime argument of `std::thread::scope`,
        // applied to pooled threads instead of freshly spawned ones.
        let task: Task = unsafe { std::mem::transmute(wrapper) };
        self.pool.push(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpnm_sync::atomic::AtomicUsize;

    #[test]
    fn scope_joins_all_tasks_and_allows_borrows() {
        let pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..1000).collect();
        let total = AtomicUsize::new(0);
        pool.scope(|scope| {
            for chunk in data.chunks(100) {
                let total = &total;
                scope.spawn(move || {
                    let s: u64 = chunk.iter().sum();
                    // RELAXED: scope() latch orders this against the final
                    // read; the counter needs atomicity only.
                    total.fetch_add(s as usize, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.into_inner(), 1000 * 999 / 2);
    }

    #[test]
    fn zero_worker_pool_runs_on_caller() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 0);
        assert_eq!(pool.lanes(), 1);
        let caller = std::thread::current().id();
        let ran_on = Mutex::new(None);
        pool.scope(|scope| {
            let ran_on = &ran_on;
            scope.spawn(move || *ran_on.lock().unwrap() = Some(std::thread::current().id()));
        });
        assert_eq!(ran_on.into_inner().unwrap(), Some(caller));
    }

    #[test]
    fn sequential_scopes_reuse_workers() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.scope(|scope| {
                for _ in 0..4 {
                    let counter = &counter;
                    scope.spawn(move || {
                        // RELAXED: scope() latch synchronizes; atomicity only.
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(counter.into_inner(), 200);
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = WorkerPool::new(1);
        let out = pool.scope(|scope| {
            scope.spawn(|| {});
            42
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn task_panic_propagates_after_siblings_finish() {
        let pool = WorkerPool::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let finished2 = Arc::clone(&finished);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                let finished = &finished2;
                scope.spawn(|| panic!("boom"));
                for _ in 0..8 {
                    scope.spawn(move || {
                        // RELAXED: scope() latch synchronizes; atomicity only.
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "scope must re-panic");
        // RELAXED: read after the scope's latch synchronized.
        assert_eq!(finished.load(Ordering::Relaxed), 8, "siblings all ran");
        // The pool survives a panicked scope.
        let ok = AtomicUsize::new(0);
        pool.scope(|scope| {
            let ok = &ok;
            scope.spawn(move || {
                // RELAXED: scope() latch synchronizes; atomicity only.
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.into_inner(), 1);
    }

    #[test]
    fn concurrent_scopes_from_many_threads() {
        let pool = WorkerPool::new(2);
        let grand_total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = &pool;
                let grand_total = &grand_total;
                s.spawn(move || {
                    for _ in 0..10 {
                        pool.scope(|scope| {
                            for _ in 0..3 {
                                scope.spawn(move || {
                                    // RELAXED: scope() latch synchronizes.
                                    grand_total.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    }
                });
            }
        });
        assert_eq!(grand_total.into_inner(), 120);
    }

    #[test]
    fn nested_scope_from_worker_context_completes() {
        // The sharded-tick shape: an outer scope's tasks run on pool
        // workers and each opens an inner scope on the *same* pool. With
        // more outer tasks than lanes, some inner scopes necessarily run
        // from worker context while every worker is busy — progress then
        // depends on waiters helping, which is what this test pins down.
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..8 {
                let total = &total;
                let pool = &pool;
                outer.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move || {
                                // RELAXED: scope() latch synchronizes.
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.into_inner(), 32);

        // Three levels deep, zero workers: everything degenerates to the
        // caller without hanging.
        let pool = WorkerPool::new(0);
        let hits = AtomicUsize::new(0);
        pool.scope(|a| {
            let hits = &hits;
            let pool = &pool;
            a.spawn(move || {
                pool.scope(|b| {
                    b.spawn(move || {
                        pool.scope(|c| {
                            c.spawn(move || {
                                // RELAXED: scope() latch synchronizes.
                                hits.fetch_add(1, Ordering::Relaxed);
                            });
                        });
                    });
                });
            });
        });
        assert_eq!(hits.into_inner(), 1);
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.lanes() >= 1);
        let hits = AtomicUsize::new(0);
        a.scope(|scope| {
            for _ in 0..16 {
                let hits = &hits;
                scope.spawn(move || {
                    // RELAXED: scope() latch synchronizes; atomicity only.
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.into_inner(), 16);
    }
}
