//! Service/engine equivalence: a `GpnmService` hosting k registered
//! patterns must produce, per handle and per tick, results **bitwise
//! identical** to k independent `GpnmEngine`s fed the same batches — on
//! every backend and under both semantics. On top of result equality the
//! suite asserts the delta contract: each tick's `MatchDelta` reconstructs
//! the new result from the previous one (`added ∪ (prev ∖ removed)`), with
//! a monotone `result_version`.
//!
//! This is the load-bearing proof that the shared single-pass repair
//! changes *cost*, not *answers*.

use proptest::prelude::*;

use gpnm_distance::{BackendKind, IncrementalIndex, PartitionedBackend, SlenBackend, SparseIndex};
use gpnm_engine::{GpnmEngine, RefreshStrategy, Strategy};
use gpnm_graph::{Bound, DataGraph, Label, LabelInterner, NodeId, PatternGraph};
use gpnm_matcher::{MatchResult, MatchSemantics};
use gpnm_service::{GpnmService, ServiceError, TickOutcome};
use gpnm_updates::{DataUpdate, UpdateBatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random labeled digraph (the engine equivalence suites' distribution).
fn random_graph(
    rng: &mut StdRng,
    nodes: usize,
    edges: usize,
    labels: usize,
) -> (DataGraph, LabelInterner) {
    let mut interner = LabelInterner::new();
    let label_ids: Vec<Label> = (0..labels)
        .map(|i| interner.intern(&format!("L{i}")))
        .collect();
    let mut g = DataGraph::new();
    let ids: Vec<NodeId> = (0..nodes)
        .map(|_| g.add_node(label_ids[rng.gen_range(0..labels)]))
        .collect();
    let mut added = 0;
    let mut attempts = 0;
    while added < edges && attempts < edges * 20 {
        attempts += 1;
        let u = ids[rng.gen_range(0..nodes)];
        let v = ids[rng.gen_range(0..nodes)];
        if u != v && g.add_edge(u, v).is_ok() {
            added += 1;
        }
    }
    (g, interner)
}

/// Random small finite-bounded pattern over the same label alphabet.
fn random_pattern(rng: &mut StdRng, interner: &LabelInterner, labels: usize) -> PatternGraph {
    let n: usize = rng.gen_range(2..=4);
    let mut p = PatternGraph::new();
    let nodes: Vec<_> = (0..n)
        .map(|_| {
            let l = interner
                .get(&format!("L{}", rng.gen_range(0..labels)))
                .expect("label interned");
            p.add_node(l)
        })
        .collect();
    let edges = rng.gen_range(1..=n);
    let mut added = 0;
    let mut attempts = 0;
    while added < edges && attempts < 50 {
        attempts += 1;
        let a = nodes[rng.gen_range(0..n)];
        let b = nodes[rng.gen_range(0..n)];
        if a != b && p.add_edge(a, b, Bound::Hops(rng.gen_range(1..=4))).is_ok() {
            added += 1;
        }
    }
    p
}

/// Random *data-only* batch, valid by construction against `graph`.
fn random_data_batch(
    rng: &mut StdRng,
    graph: &DataGraph,
    interner: &LabelInterner,
    len: usize,
) -> UpdateBatch {
    let mut g = graph.clone();
    let mut batch = UpdateBatch::new();
    for _ in 0..len {
        let choice = rng.gen_range(0..100);
        let live: Vec<NodeId> = g.nodes().collect();
        if choice < 40 && live.len() >= 2 {
            let u = live[rng.gen_range(0..live.len())];
            let v = live[rng.gen_range(0..live.len())];
            if u != v && g.add_edge(u, v).is_ok() {
                batch.push(DataUpdate::InsertEdge { from: u, to: v });
            }
        } else if choice < 70 {
            let edges: Vec<_> = g.edges().collect();
            if !edges.is_empty() {
                let (u, v) = edges[rng.gen_range(0..edges.len())];
                g.remove_edge(u, v).expect("edge just listed");
                batch.push(DataUpdate::DeleteEdge { from: u, to: v });
            }
        } else if choice < 85 {
            let l = Label(rng.gen_range(0..interner.len() as u32));
            g.add_node(l);
            batch.push(DataUpdate::InsertNode { label: l });
        } else if live.len() > 3 {
            let v = live[rng.gen_range(0..live.len())];
            g.remove_node(v).expect("node just listed");
            batch.push(DataUpdate::DeleteNode { node: v });
        }
    }
    batch
}

/// The per-tick engine strategies exercised against the service pipeline.
const STRATEGIES: [Strategy; 4] = [
    Strategy::UaGpnm,
    Strategy::UaGpnmNoPar,
    Strategy::EhGpnm,
    Strategy::IncGpnm,
];

/// Run k patterns through one service and k independent engines (backend
/// `B` on both sides), assert bitwise-equal results per handle per tick,
/// plus the delta-reconstruction invariant.
fn check_equivalence<B: SlenBackend>(seed: u64, k: usize, ticks: usize, semantics: MatchSemantics) {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = rng.gen_range(2..6);
    let nodes = rng.gen_range(8..32);
    let edges = rng.gen_range(nodes / 2..nodes * 3);
    let (graph, interner) = random_graph(&mut rng, nodes, edges, labels);

    let mut service = GpnmService::<B>::new(graph.clone());
    let mut engines: Vec<GpnmEngine<B>> = Vec::new();
    let mut handles = Vec::new();
    for i in 0..k {
        let pattern = random_pattern(&mut rng, &interner, labels);
        let handle = service
            .register_pattern(pattern.clone(), semantics)
            .expect("non-empty pattern");
        let mut engine = GpnmEngine::<B>::with_backend(graph.clone(), pattern, semantics);
        engine.initial_query();
        assert_eq!(
            service.result(handle).unwrap(),
            engine.result(),
            "initial result diverged (seed {seed}, pattern {i})"
        );
        handles.push(handle);
        engines.push(engine);
    }

    let mut prev: Vec<MatchResult> = handles
        .iter()
        .map(|&h| service.result(h).unwrap().clone())
        .collect();
    for tick in 0..ticks {
        let len = rng.gen_range(1..8);
        let batch = random_data_batch(&mut rng, service.graph(), &interner, len);
        let report = service.apply(&batch).expect("valid data batch");
        assert_eq!(report.tick, tick as u64 + 1);
        assert_eq!(report.deltas.len(), k, "one delta per registered pattern");
        let strategy = STRATEGIES[tick % STRATEGIES.len()];
        for i in 0..k {
            engines[i]
                .subsequent_query(&batch, strategy)
                .expect("valid batch");
            let got = service.result(handles[i]).unwrap();
            assert_eq!(
                got,
                engines[i].result(),
                "tick {tick} pattern {i} diverged from its engine \
                 (seed {seed}, {strategy}, {semantics:?})"
            );
            // Delta contract: added ∪ (prev ∖ removed) = new, version moves.
            let delta = report.delta_for(handles[i]).expect("handle in report");
            assert_eq!(delta.result_version, tick as u64 + 1);
            assert_eq!(
                &delta.apply_to(&prev[i]),
                got,
                "delta does not reconstruct the result (seed {seed}, tick {tick}, pattern {i})"
            );
            for &(p, v) in &delta.added {
                assert!(!prev[i].contains(p, v), "added pair was already present");
            }
            for &(p, v) in &delta.removed {
                assert!(prev[i].contains(p, v), "removed pair was not present");
            }
            prev[i] = got.clone();
        }
        // The graphs walked the same trajectory.
        assert_eq!(
            service.graph().node_count(),
            engines[0].graph().node_count()
        );
        assert_eq!(
            service.graph().edge_count(),
            engines[0].graph().edge_count()
        );
    }
}

proptest! {
    // Each case runs 3 backends (+ both semantics split across two props),
    // k engines and several ticks; 12 cases keeps the default run under a
    // few seconds while PROPTEST_CASES still scales it in CI.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn service_matches_k_engines_simulation(seed in any::<u64>(), k in 1usize..4) {
        check_equivalence::<IncrementalIndex>(seed, k, 3, MatchSemantics::Simulation);
        check_equivalence::<PartitionedBackend>(seed, k, 3, MatchSemantics::Simulation);
        check_equivalence::<SparseIndex>(seed, k, 3, MatchSemantics::Simulation);
    }

    #[test]
    fn service_matches_k_engines_dual(seed in any::<u64>(), k in 1usize..4) {
        check_equivalence::<IncrementalIndex>(seed, k, 3, MatchSemantics::DualSimulation);
        check_equivalence::<PartitionedBackend>(seed, k, 3, MatchSemantics::DualSimulation);
        check_equivalence::<SparseIndex>(seed, k, 3, MatchSemantics::DualSimulation);
    }

    /// The runtime-dispatched backend behind the builder path obeys the
    /// same equivalence (and the dense memory guard stays out of the way
    /// at test scale).
    #[test]
    fn any_backend_service_matches_engines(seed in any::<u64>()) {
        for kind in BackendKind::ALL {
            let mut rng = StdRng::seed_from_u64(seed);
            let (graph, interner) = random_graph(&mut rng, 20, 40, 4);
            let mut service = GpnmService::builder()
                .backend(kind)
                .max_index_gb(1)
                .build(graph.clone())
                .expect("tiny graph fits any budget");
            let pattern = random_pattern(&mut rng, &interner, 4);
            let h = service
                .register_pattern(pattern.clone(), MatchSemantics::Simulation)
                .unwrap();
            let mut engine = GpnmEngine::with_backend_kind(
                kind,
                graph,
                pattern,
                MatchSemantics::Simulation,
            );
            engine.initial_query();
            for _ in 0..2 {
                let batch = random_data_batch(&mut rng, service.graph(), &interner, 5);
                service.apply(&batch).expect("valid");
                engine.subsequent_query(&batch, Strategy::UaGpnm).expect("valid");
                prop_assert_eq!(service.result(h).unwrap(), engine.result());
            }
            let _ = engine; // engine and service walked the same trajectory
            prop_assert_eq!(service.backend().backend_kind(), kind);
        }
    }

    /// Switching a pattern's refresh strategy *mid-stream* — tick by tick,
    /// per pattern, through all three arms — never changes the answers:
    /// every arm converges to the same fixed point, so the controller is
    /// free to flip between them at any tick boundary. Results stay
    /// bitwise-equal to dedicated engines and the delta contract holds
    /// across every switch.
    #[test]
    fn mid_stream_strategy_switches_preserve_results(seed in any::<u64>(), k in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (graph, interner) = random_graph(&mut rng, 20, 40, 4);
        let mut service = GpnmService::<SparseIndex>::new(graph.clone());
        let mut engines = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..k {
            let pattern = random_pattern(&mut rng, &interner, 4);
            let h = service
                .register_pattern(pattern.clone(), MatchSemantics::Simulation)
                .unwrap();
            let mut engine = GpnmEngine::<SparseIndex>::with_backend(
                graph.clone(),
                pattern,
                MatchSemantics::Simulation,
            );
            engine.initial_query();
            handles.push(h);
            engines.push(engine);
        }

        let mut prev: Vec<MatchResult> = handles
            .iter()
            .map(|&h| service.result(h).unwrap().clone())
            .collect();
        for tick in 0..5usize {
            // Each pattern lands on a different arm each tick, so every
            // (arm → arm) transition is exercised somewhere in the run.
            for (i, &h) in handles.iter().enumerate() {
                let s = RefreshStrategy::ALL[(tick + i) % RefreshStrategy::ALL.len()];
                service.set_refresh_strategy(h, s).unwrap();
                prop_assert_eq!(service.refresh_strategy(h).unwrap(), s);
            }
            let batch = random_data_batch(&mut rng, service.graph(), &interner, 5);
            let report = service.apply(&batch).expect("valid batch");
            for i in 0..k {
                engines[i]
                    .subsequent_query(&batch, Strategy::UaGpnm)
                    .expect("valid batch");
                let got = service.result(handles[i]).unwrap();
                prop_assert_eq!(
                    got,
                    engines[i].result(),
                    "tick {} pattern {} diverged after a strategy switch (seed {})",
                    tick,
                    i,
                    seed
                );
                let delta = report.delta_for(handles[i]).expect("handle in report");
                prop_assert_eq!(delta.result_version, tick as u64 + 1);
                prop_assert_eq!(&delta.apply_to(&prev[i]), got);
                prev[i] = got.clone();
            }
        }
    }

    /// An adaptive service — controller picking strategies and the tuner
    /// picking lane counts live — produces bitwise the same results and
    /// deltas as a fixed-strategy service fed the same stream. The
    /// controller moves *cost*, never *answers*.
    #[test]
    fn adaptive_service_matches_fixed(seed in any::<u64>(), k in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (graph, interner) = random_graph(&mut rng, 20, 40, 4);
        let mut adaptive = GpnmService::builder()
            .backend(BackendKind::Sparse)
            .adaptive(true)
            .build(graph.clone())
            .unwrap();
        let mut fixed = GpnmService::builder()
            .backend(BackendKind::Sparse)
            .build(graph)
            .unwrap();
        prop_assert!(adaptive.adaptive());
        prop_assert!(!fixed.adaptive());

        let mut pairs = Vec::new();
        for _ in 0..k {
            let pattern = random_pattern(&mut rng, &interner, 4);
            let ha = adaptive
                .register_pattern(pattern.clone(), MatchSemantics::Simulation)
                .unwrap();
            let hf = fixed
                .register_pattern(pattern, MatchSemantics::Simulation)
                .unwrap();
            pairs.push((ha, hf));
        }

        for _ in 0..5 {
            let batch = random_data_batch(&mut rng, adaptive.graph(), &interner, 6);
            let ra = adaptive.apply(&batch).expect("valid batch");
            let rf = fixed.apply(&batch).expect("valid batch");
            for &(ha, hf) in &pairs {
                prop_assert_eq!(adaptive.result(ha).unwrap(), fixed.result(hf).unwrap());
                let da = ra.delta_for(ha).expect("handle in report");
                let df = rf.delta_for(hf).expect("handle in report");
                prop_assert_eq!(&da.added, &df.added);
                prop_assert_eq!(&da.removed, &df.removed);
                prop_assert_eq!(da.result_version, df.result_version);
            }
        }
        // The controller actually ran: per-pattern strategies are reported.
        let batch = random_data_batch(&mut rng, adaptive.graph(), &interner, 4);
        let report = adaptive.apply(&batch).expect("valid batch");
        prop_assert_eq!(report.stats.per_pattern_strategy.len(), k);
    }

    /// Deregistering mid-stream narrows the shared requirement union
    /// without perturbing the surviving patterns' results.
    #[test]
    fn deregister_mid_stream_preserves_survivors(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (graph, interner) = random_graph(&mut rng, 18, 40, 4);
        let mut service = GpnmService::<SparseIndex>::new(graph.clone());
        let p1 = random_pattern(&mut rng, &interner, 4);
        let p2 = random_pattern(&mut rng, &interner, 4);
        let h1 = service.register_pattern(p1, MatchSemantics::Simulation).unwrap();
        let h2 = service
            .register_pattern(p2.clone(), MatchSemantics::Simulation)
            .unwrap();
        let mut engine2 =
            GpnmEngine::<SparseIndex>::with_backend(graph, p2, MatchSemantics::Simulation);
        engine2.initial_query();

        let batch = random_data_batch(&mut rng, service.graph(), &interner, 5);
        service.apply(&batch).expect("valid");
        engine2.subsequent_query(&batch, Strategy::UaGpnm).expect("valid");

        let rows_before = service.backend().resident_rows();
        service.deregister(h1).expect("registered");
        prop_assert!(service.backend().resident_rows() <= rows_before);
        prop_assert_eq!(service.result(h1), Err(ServiceError::UnknownHandle(h1)));

        // Survivor keeps matching its dedicated engine after the narrow.
        let batch = random_data_batch(&mut rng, service.graph(), &interner, 5);
        let report = service.apply(&batch).expect("valid");
        engine2.subsequent_query(&batch, Strategy::UaGpnm).expect("valid");
        prop_assert_eq!(service.result(h2).unwrap(), engine2.result());
        prop_assert_eq!(report.deltas.len(), 1);
        prop_assert!(report.delta_for(h1).is_none());
    }
}
