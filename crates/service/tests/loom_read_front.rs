//! Loom model tests for the epoch-swapped `ReadFront` publish protocol.
//!
//! Build with `RUSTFLAGS="--cfg gpnm_loom"`; in ordinary builds this file
//! compiles to nothing. The models check the two PR-6 invariants under
//! every bounded interleaving:
//!
//! 1. a concurrent reader only ever observes fully committed views, in
//!    monotone version order (the double-buffered epoch swap), and
//! 2. `publish_tick` swaps **all** views in before **any** delta fans out,
//!    so a woken subscriber's `read_view` is never older than the delta it
//!    was handed.
//!
//! The third test seeds the opposite ordering
//! (`publish_tick_fanout_first`, compiled only under this cfg) and proves
//! the checker catches it — the acceptance gate that the model is actually
//! sensitive to the bug class it exists for.
#![cfg(gpnm_loom)]

use gpnm_graph::{LabelInterner, NodeId, PatternGraph, PatternNodeId};
use gpnm_matcher::{MatchDelta, MatchResult};
use gpnm_service::{HandleId, ReadFront, ReadView, SubEvent};
use gpnm_sync::Arc;

fn pattern1() -> PatternGraph {
    let mut li = LabelInterner::new();
    let a = li.intern("A");
    let mut p = PatternGraph::new();
    p.add_node(a);
    p
}

fn view_with(nodes: &[u32], version: u64) -> ReadView {
    let mut result = MatchResult::for_pattern(&pattern1());
    for &n in nodes {
        result.set_mut(PatternNodeId(0)).insert(NodeId(n));
    }
    ReadView {
        result,
        result_version: version,
        tick: version,
    }
}

/// Distinct committed views: version v holds nodes {v}.
fn committed(version: u64) -> ReadView {
    view_with(&[version as u32], version)
}

fn delta_between(prev: &ReadView, next: &ReadView) -> MatchDelta {
    next.result.delta_from(&prev.result, next.result_version)
}

/// Epoch-swap safety: while a writer publishes versions 1 and 2, a pinned
/// reader sees only committed, untorn views with monotone versions — in
/// every interleaving, including the try-read-fails window where two
/// publications race past the reader.
#[test]
fn readers_observe_only_committed_epochs() {
    loom::model(|| {
        let front = ReadFront::new();
        let id = HandleId::from_raw(0);
        front.publish(id, committed(0));
        let pinned = front.pinned(id).expect("published");
        let writer = {
            let front = front.clone();
            loom::thread::spawn(move || {
                front.publish(id, committed(1));
                front.publish(id, committed(2));
            })
        };
        let mut last = 0u64;
        for _ in 0..2 {
            let v = pinned.view();
            assert!(v.result_version >= last, "version rewound");
            last = v.result_version;
            let expect = committed(v.result_version);
            assert_eq!(v.result, expect.result, "torn or uncommitted view");
        }
        writer.join().expect("writer");
        assert_eq!(pinned.view().result_version, 2, "final publish visible");
    });
}

/// Tick ordering: by the time a subscriber receives a tick's delta, the
/// published view is at least as new as that delta.
#[test]
fn subscriber_never_sees_view_older_than_its_delta() {
    loom::model(|| {
        let front = ReadFront::new();
        let id = HandleId::from_raw(0);
        let v0 = committed(0);
        let v1 = committed(1);
        front.publish(id, v0.clone());
        let sub = front.subscribe(id).expect("published");
        let consumer = {
            let front = front.clone();
            loom::thread::spawn(move || match sub.recv() {
                SubEvent::Delta(d) => {
                    let served = front.read_view(id).expect("still open");
                    assert!(
                        served.result_version >= d.result_version,
                        "view v{} is older than the delivered delta v{}",
                        served.result_version,
                        d.result_version
                    );
                }
                other => panic!("expected a delta, got {other:?}"),
            })
        };
        let delta = delta_between(&v0, &v1);
        front.publish_tick(vec![(id, v1, delta)]);
        consumer.join().expect("consumer");
    });
}

/// Seeded-bug sensitivity: fanning the delta out *before* the view swap
/// (the inverted ordering `publish_tick` exists to forbid) must be caught
/// by the same invariant check the previous test passes.
#[test]
#[should_panic(expected = "model failed")]
fn detects_fanout_before_publish() {
    loom::model(|| {
        let front = ReadFront::new();
        let id = HandleId::from_raw(0);
        let v0 = committed(0);
        let v1 = committed(1);
        front.publish(id, v0.clone());
        let sub = front.subscribe(id).expect("published");
        let consumer = {
            let front = front.clone();
            loom::thread::spawn(move || match sub.recv() {
                SubEvent::Delta(d) => {
                    let served = front.read_view(id).expect("still open");
                    assert!(
                        served.result_version >= d.result_version,
                        "view v{} is older than the delivered delta v{}",
                        served.result_version,
                        d.result_version
                    );
                }
                other => panic!("expected a delta, got {other:?}"),
            })
        };
        let delta = delta_between(&v0, &v1);
        front.publish_tick_fanout_first(vec![(id, v1, delta)]);
        consumer.join().expect("consumer");
    });
}

/// Registration race: closing a handle while a reader pins it — the pinned
/// reader keeps serving the last published view, and `read_view` flips to
/// a typed error, in every interleaving (no torn deregistration).
#[test]
fn close_race_keeps_pinned_reader_serving() {
    loom::model(|| {
        let front = ReadFront::new();
        let id = HandleId::from_raw(0);
        front.publish(id, committed(0));
        let pinned = front.pinned(id).expect("published");
        let closer = {
            let front = front.clone();
            loom::thread::spawn(move || front.close(id))
        };
        let v = pinned.view();
        assert_eq!(v.result_version, 0, "pinned view survives close");
        closer.join().expect("closer");
        assert!(front.read_view(id).is_err(), "closed handle reads error");
        let _keeps_serving = Arc::strong_count(&pinned.view());
    });
}
