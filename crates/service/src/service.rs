//! The continuous-query service: many standing patterns, one shared
//! single-pass repair per tick.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gpnm_adaptive::{StrategyController, ThreadTuner, TickFeatures};
use gpnm_distance::{
    AnyBackend, BackendKind, IoStats, PartitionedBackend, RepairHint, SlenBackend, SlenRequirements,
};
use gpnm_engine::pipeline::{
    commit_data_update, plan_for_data_update, refresh_pattern_strategy, CommittedUpdate,
    SharedElimination,
};
use gpnm_engine::RefreshStrategy;
use gpnm_graph::{DataGraph, PatternGraph};
use gpnm_matcher::{match_graph, MatchDelta, MatchResult, MatchSemantics, RepairPlan};
use gpnm_pool::WorkerPool;
use gpnm_telemetry::{IoDelta, PatternRefreshSample, TickRecorder};
use gpnm_updates::{reduce_batch, Update, UpdateBatch};

use crate::error::ServiceError;
use crate::host::{HandleId, PatternHost, TickOutcome};
use crate::read::{ReadFront, ReadView, Subscription};

/// Opaque id of one registered standing pattern. Handles are unique for
/// the lifetime of the service — a deregistered handle is never reissued,
/// so a stale one can only ever yield [`ServiceError::UnknownHandle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternHandle(HandleId);

impl PatternHandle {
    /// The numeric id (stable, ascending in registration order).
    pub fn id(&self) -> u64 {
        self.0.raw()
    }
}

impl From<PatternHandle> for HandleId {
    fn from(handle: PatternHandle) -> HandleId {
        handle.0
    }
}

impl std::fmt::Display for PatternHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// One registered pattern's standing state.
#[derive(Debug, Clone)]
struct PatternSession {
    pattern: PatternGraph,
    semantics: MatchSemantics,
    result: MatchResult,
    version: u64,
    /// How the next tick refreshes this pattern. Every
    /// [`RefreshStrategy`] reaches the same fixed point, so this knob
    /// (hand-set or driven by the adaptive controller) trades cost only.
    strategy: RefreshStrategy,
}

/// Fine-grained accounting of where one tick spent its time — the
/// observability a serving deployment tunes shard counts and
/// `refresh_threads` against. Printed by `gpnm replay --stats`.
///
/// All durations are nanoseconds (`u128` so they sum safely when a
/// cluster aggregates shard stats).
#[derive(Debug, Clone, Default)]
pub struct TickStats {
    /// Net-effect batch reduction.
    pub reduce_ns: u128,
    /// The shared graph + `SLen` commit pass — paid once per tick, the
    /// part a per-pattern-engine deployment would pay k times.
    pub shared_repair_ns: u128,
    /// DER-II elimination detection + EH-Tree build (also shared).
    pub detect_ns: u128,
    /// Read-front publish + subscription fan-out (`0` on a non-publishing
    /// shard replica — the cluster publishes merged views itself).
    pub publish_ns: u128,
    /// Per-pattern refresh time, in registration order. Summed this is
    /// the embarrassingly parallel half of the tick; the max entry bounds
    /// its ideal parallel wall time.
    pub per_pattern_refresh_ns: Vec<(PatternHandle, u128)>,
    /// Parallel lanes the refresh phase ran on (1 = sequential baseline).
    pub refresh_lanes: usize,
    /// Lanes the shared worker pool offers this host — pool utilization
    /// of the refresh phase is `refresh_lanes / pool_lanes`.
    pub pool_lanes: usize,
    /// Refresh strategy each pattern ran this tick (display names, in
    /// registration order — parallel to `per_pattern_refresh_ns`).
    pub per_pattern_strategy: Vec<(PatternHandle, &'static str)>,
    /// Cumulative adaptive controller arm switches across all patterns
    /// since the controller was enabled (`0` on a fixed-strategy host).
    pub strategy_switches: u64,
    /// Updates whose repair pass the EH-Tree eliminated, summed over
    /// patterns.
    pub eliminated: usize,
    /// Repair passes actually run, summed over patterns.
    pub repair_calls: usize,
    /// Nodes in the union of the committed updates' `Aff_N` sets (with
    /// multiplicity across updates) — how much of the graph the batch
    /// disturbed.
    pub affected_nodes: usize,
    /// The `SLen` backend that served the tick (`"dense"`, `"sparse"`,
    /// `"paged"`, …). Empty on a default-constructed stats value.
    pub backend_kind: &'static str,
    /// Distance rows the backend held after the tick.
    pub resident_rows: usize,
    /// The backend's in-memory footprint after the tick, in bytes
    /// (out-of-core backends report directory + cache, not the spill
    /// file).
    pub index_mem_bytes: usize,
    /// Paging activity **during this tick** (cumulative counters diffed
    /// across the tick). `None` for in-memory backends.
    pub io: Option<IoStats>,
}

impl TickStats {
    /// Summed per-pattern refresh time.
    pub fn refresh_total_ns(&self) -> u128 {
        self.per_pattern_refresh_ns.iter().map(|&(_, ns)| ns).sum()
    }

    /// The slowest single pattern's refresh time — the critical path of a
    /// perfectly parallel refresh phase.
    pub fn refresh_max_ns(&self) -> u128 {
        self.per_pattern_refresh_ns
            .iter()
            .map(|&(_, ns)| ns)
            .max()
            .unwrap_or(0)
    }

    /// The strategy name recorded for `handle` this tick, if any.
    fn strategy_of(&self, handle: PatternHandle) -> Option<&'static str> {
        self.per_pattern_strategy
            .iter()
            .find(|&&(h, _)| h == handle)
            .map(|&(_, name)| name)
    }

    /// Multi-line human rendering (the `--stats` output).
    pub fn render(&self) -> String {
        let lanes = if self.pool_lanes > 0 {
            format!("{}/{}", self.refresh_lanes, self.pool_lanes)
        } else {
            self.refresh_lanes.to_string()
        };
        let mut out = format!(
            "  stats: reduce={}µs shared_repair={}µs detect={}µs refresh(Σ)={}µs \
             refresh(max)={}µs publish={}µs lanes={lanes} switches={} eliminated={} \
             repairs={} affected={}",
            self.reduce_ns / 1_000,
            self.shared_repair_ns / 1_000,
            self.detect_ns / 1_000,
            self.refresh_total_ns() / 1_000,
            self.refresh_max_ns() / 1_000,
            self.publish_ns / 1_000,
            self.strategy_switches,
            self.eliminated,
            self.repair_calls,
            self.affected_nodes,
        );
        out.push_str(&format!(
            "\n  index: kind={} resident_rows={} mem={}KiB",
            self.backend_kind,
            self.resident_rows,
            self.index_mem_bytes / 1024,
        ));
        if let Some(io) = &self.io {
            out.push_str(&format!(
                "\n  paging: hits={} misses={} hit_rate={:.1}% evictions={} \
                 pages_read={} pages_written={}",
                io.cache_hits,
                io.cache_misses,
                io.hit_rate() * 100.0,
                io.cache_evictions,
                io.pages_read,
                io.pages_written,
            ));
        }
        for &(handle, ns) in &self.per_pattern_refresh_ns {
            out.push_str(&format!("\n    {handle}: refresh {}µs", ns / 1_000));
            if let Some(name) = self.strategy_of(handle) {
                out.push_str(&format!(" [{name}]"));
            }
        }
        out
    }

    /// The stats as one JSON object (hand-rolled — the workspace carries
    /// no serde). Field names mirror the struct; `io` is `null` on
    /// in-memory backends.
    pub fn to_json(&self) -> String {
        let per_pattern: Vec<String> = self
            .per_pattern_refresh_ns
            .iter()
            .map(|&(handle, ns)| {
                let strategy = self.strategy_of(handle).unwrap_or("");
                format!(
                    "{{\"handle\":{},\"refresh_ns\":{ns},\"strategy\":\"{strategy}\"}}",
                    handle.id()
                )
            })
            .collect();
        let io = match &self.io {
            Some(io) => format!(
                "{{\"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\
                 \"pages_read\":{},\"pages_written\":{}}}",
                io.cache_hits, io.cache_misses, io.cache_evictions, io.pages_read, io.pages_written
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"reduce_ns\":{},\"shared_repair_ns\":{},\"detect_ns\":{},\
             \"refresh_total_ns\":{},\"refresh_max_ns\":{},\"publish_ns\":{},\
             \"refresh_lanes\":{},\
             \"pool_lanes\":{},\"strategy_switches\":{},\"eliminated\":{},\
             \"repair_calls\":{},\"affected_nodes\":{},\"backend_kind\":\"{}\",\
             \"resident_rows\":{},\"index_mem_bytes\":{},\"per_pattern\":[{}],\"io\":{}}}",
            self.reduce_ns,
            self.shared_repair_ns,
            self.detect_ns,
            self.refresh_total_ns(),
            self.refresh_max_ns(),
            self.publish_ns,
            self.refresh_lanes,
            self.pool_lanes,
            self.strategy_switches,
            self.eliminated,
            self.repair_calls,
            self.affected_nodes,
            self.backend_kind,
            self.resident_rows,
            self.index_mem_bytes,
            per_pattern.join(","),
            io,
        )
    }

    /// Project per-tick stats out of the telemetry [`TickRecorder`] — the
    /// recorder is the tick's single bookkeeping path (`finish()` flushes
    /// the same numbers into the global metrics registry), so the per-tick
    /// stats and the cumulative metrics can never disagree. The backend
    /// fields (`kind`/rows/bytes) are point-in-time gauges sampled at tick
    /// end, not tick measurements; `strategy_switches` is the cumulative
    /// controller count this struct has always reported.
    fn from_recorder<B: SlenBackend>(
        rec: &TickRecorder,
        strategy_switches: u64,
        index: &B,
    ) -> TickStats {
        TickStats {
            reduce_ns: u128::from(rec.reduce_ns),
            shared_repair_ns: u128::from(rec.commit_ns),
            detect_ns: u128::from(rec.detect_ns),
            publish_ns: u128::from(rec.publish_ns),
            per_pattern_refresh_ns: rec
                .per_pattern
                .iter()
                .map(|s| (PatternHandle(HandleId(s.handle)), u128::from(s.ns)))
                .collect(),
            refresh_lanes: rec.refresh_lanes,
            pool_lanes: rec.pool_lanes,
            per_pattern_strategy: rec
                .per_pattern
                .iter()
                .map(|s| (PatternHandle(HandleId(s.handle)), s.strategy))
                .collect(),
            strategy_switches,
            eliminated: rec.eliminated as usize,
            repair_calls: rec.repair_calls as usize,
            affected_nodes: rec.affected_nodes as usize,
            backend_kind: index.kind(),
            resident_rows: index.resident_rows(),
            index_mem_bytes: index.mem_bytes(),
            io: rec.io.map(|d| IoStats {
                cache_hits: d.hits,
                cache_misses: d.misses,
                cache_evictions: d.evictions,
                pages_read: d.pages_read,
                pages_written: d.pages_written,
            }),
        }
    }
}

/// Nanoseconds of a [`Duration`] as the `u64` the telemetry recorder
/// carries (saturating — 584 years of headroom).
fn ns64(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// What one [`GpnmService::apply`] tick did: shared-work accounting plus
/// one [`MatchDelta`] per registered pattern.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// 1-based tick number (the batch count applied so far).
    pub tick: u64,
    /// Updates in the submitted batch.
    pub updates_submitted: usize,
    /// Updates surviving net-effect reduction (the ones committed).
    pub updates_applied: usize,
    /// Distance pairs the shared `SLen` repair changed.
    pub slen_changes: usize,
    /// Per-pattern repair passes the EH-Trees eliminated, summed.
    pub eliminated: usize,
    /// Per-pattern repair passes run, summed.
    pub repair_calls: usize,
    /// Net-effect reduction time.
    pub reduce_time: Duration,
    /// Shared graph + `SLen` commit time (paid once, not per pattern).
    pub slen_time: Duration,
    /// Per-pattern detection + repair + diff time, summed.
    pub refresh_time: Duration,
    /// End-to-end wall time of the tick.
    pub total_time: Duration,
    /// Wall-clock unix milliseconds when the tick finished (sampled from
    /// the telemetry clock) — the `ts_ms` of this tick's `--stats-json`
    /// line.
    pub ts_ms: u64,
    /// Per-pattern deltas, in registration order.
    pub deltas: Vec<(PatternHandle, MatchDelta)>,
    /// Fine-grained timing/counters for the tick.
    pub stats: TickStats,
}

impl TickOutcome for TickReport {
    type Handle = PatternHandle;

    fn tick(&self) -> u64 {
        self.tick
    }

    fn deltas(&self) -> &[(PatternHandle, MatchDelta)] {
        &self.deltas
    }

    fn summary(&self) -> String {
        format!(
            "tick {}: ΔG={} (net {}), slen_changes={}, patterns={}, +{} −{}, total={:?}",
            self.tick,
            self.updates_submitted,
            self.updates_applied,
            self.slen_changes,
            self.deltas.len(),
            self.total_added(),
            self.total_removed(),
            self.total_time,
        )
    }

    fn render_stats(&self) -> String {
        self.stats.render()
    }

    fn stats_json(&self) -> String {
        format!(
            "{{\"tick\":{},\"ts_ms\":{},\"updates_submitted\":{},\"updates_applied\":{},\
             \"slen_changes\":{},\"added\":{},\"removed\":{},\"total_ns\":{},\"stats\":{}}}",
            self.tick,
            self.ts_ms,
            self.updates_submitted,
            self.updates_applied,
            self.slen_changes,
            self.total_added(),
            self.total_removed(),
            self.total_time.as_nanos(),
            self.stats.to_json(),
        )
    }
}

/// Fallible, builder-style construction of a runtime-configured service —
/// replaces the panicking constructor zoo for deployments that pick the
/// backend from configuration.
///
/// ```
/// use gpnm_distance::BackendKind;
/// use gpnm_service::GpnmService;
///
/// let fig = gpnm_graph::paper::fig1();
/// let service = GpnmService::builder()
///     .backend(BackendKind::Sparse)
///     .max_index_gb(4)
///     .build(fig.graph)
///     .expect("sparse builds are never refused");
/// ```
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    kind: BackendKind,
    max_index_gb: f64,
    cache_budget_mb: Option<f64>,
    hint: RepairHint,
    refresh_threads: usize,
    publishing: bool,
    adaptive: bool,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder {
            kind: BackendKind::Partitioned,
            max_index_gb: 4.0,
            cache_budget_mb: None,
            hint: RepairHint::Accelerated,
            refresh_threads: 0,
            publishing: true,
            adaptive: false,
        }
    }
}

impl ServiceBuilder {
    /// A builder with the defaults: partitioned backend, 4 GiB dense-index
    /// budget, accelerated repair.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the `SLen` backend.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.kind = kind;
        self
    }

    /// Memory budget for dense backends, in GiB. [`ServiceBuilder::build`]
    /// refuses a dense matrix whose estimate exceeds it (instead of
    /// handing the OOM killer a 40 GiB allocation); sparse backends are
    /// never refused.
    pub fn max_index_gb(mut self, gb: impl Into<f64>) -> Self {
        self.max_index_gb = gb.into();
        self
    }

    /// Hot-row cache budget for the paged backend, in MiB. Unset, the
    /// paged cache inherits the whole [`ServiceBuilder::max_index_gb`]
    /// budget — set this to hold the working set far below the admission
    /// ceiling. Ignored by in-memory backends.
    pub fn cache_budget_mb(mut self, mb: impl Into<f64>) -> Self {
        self.cache_budget_mb = Some(mb.into());
        self
    }

    /// Choose how deletion rows are recomputed (default
    /// [`RepairHint::Accelerated`]).
    pub fn repair_hint(mut self, hint: RepairHint) -> Self {
        self.hint = hint;
        self
    }

    /// Parallel lanes for the per-pattern refresh phase (default `0` =
    /// the sequential baseline, kept for ablations). After the shared
    /// commit pass the graph and index are read-only, so each registered
    /// pattern's refresh is independent; `n > 0` fans them out over up to
    /// `n` lanes of the shared [`gpnm_pool::WorkerPool`]. Results are
    /// bitwise identical either way — the knob trades wall time only.
    pub fn refresh_threads(mut self, n: usize) -> Self {
        self.refresh_threads = n;
        self
    }

    /// Enable the online cost-model controller (default `false`): each
    /// tick it picks every pattern's [`RefreshStrategy`] from live phase
    /// timings and tunes the refresh parallelism between the sequential
    /// baseline and pool fan-out — see [`GpnmService::set_adaptive`].
    /// Results stay bitwise identical to any fixed configuration; the
    /// controller trades cost only.
    pub fn adaptive(mut self, on: bool) -> Self {
        self.adaptive = on;
        self
    }

    /// Whether the service maintains its concurrent read front-end
    /// (default `true`): publishing [`ReadView`]s and fanning deltas to
    /// subscriptions after each commit. A cluster turns this **off** on
    /// its shard replicas so that nothing is observable until *every*
    /// shard has committed the tick — the cluster publishes the merged
    /// views itself, keeping per-tick publication atomic across shards.
    pub fn publishing(mut self, on: bool) -> Self {
        self.publishing = on;
        self
    }

    /// Build the service over `graph`. Fails — instead of panicking or
    /// OOMing — when the configuration cannot be honored.
    pub fn build(self, graph: DataGraph) -> Result<GpnmService<AnyBackend>, ServiceError> {
        if !self.max_index_gb.is_finite() || self.max_index_gb <= 0.0 {
            return Err(ServiceError::InvalidConfig(format!(
                "max_index_gb must be a positive finite number, got {}",
                self.max_index_gb
            )));
        }
        if let Some(mb) = self.cache_budget_mb {
            if !mb.is_finite() || mb <= 0.0 {
                return Err(ServiceError::InvalidConfig(format!(
                    "cache_budget_mb must be a positive finite number, got {mb}"
                )));
            }
        }
        if let Some(estimated_bytes) = self.kind.estimated_index_bytes(graph.slot_count()) {
            let limit_bytes = (self.max_index_gb * (1u64 << 30) as f64) as u128;
            if estimated_bytes > limit_bytes {
                return Err(ServiceError::IndexTooLarge {
                    nodes: graph.slot_count(),
                    estimated_bytes,
                    limit_bytes,
                });
            }
        }
        let reqs = SlenRequirements::empty();
        let mut index = AnyBackend::of_kind(self.kind, &graph, &reqs);
        if let AnyBackend::Paged(paged) = &mut index {
            // The paged cache rides the existing memory-admission plumbing:
            // its budget is the explicit cache knob when set, else the
            // whole max_index_gb allowance.
            let bytes = match self.cache_budget_mb {
                Some(mb) => (mb * (1u64 << 20) as f64) as usize,
                None => (self.max_index_gb * (1u64 << 30) as f64) as usize,
            };
            paged.set_cache_budget(bytes);
        }
        let mut service = GpnmService::from_parts(graph, index, reqs, self.hint);
        service.set_refresh_threads(self.refresh_threads);
        service.publishing = self.publishing;
        service.set_adaptive(self.adaptive);
        Ok(service)
    }
}

/// The online controller state of an adaptive service: one
/// [`StrategyController`] per registered pattern plus the host-wide
/// [`ThreadTuner`], and the previous tick's refresh timings the tuner
/// decides against.
#[derive(Debug, Clone)]
struct AdaptiveState {
    controllers: Vec<(PatternHandle, StrategyController)>,
    tuner: ThreadTuner,
    /// `(total_ns, max_ns)` of the last tick's refresh phase.
    last_refresh: Option<(u128, u128)>,
}

/// A continuous-query GPNM service: **one** data graph and **one** `SLen`
/// backend serving **many** registered standing patterns.
///
/// Where a [`gpnm_engine::GpnmEngine`] answers "what does this one pattern
/// match after this batch", the service answers "what changed for *every*
/// standing pattern" — and pays the expensive part (graph mutation +
/// `SLen` repair) once per batch instead of once per pattern. Each
/// [`GpnmService::apply`] tick:
///
/// 1. rejects pattern updates and invalid data updates with a typed
///    [`ServiceError`], before any mutation;
/// 2. net-reduces the batch and commits it through one shared
///    probe-free repair pass over the backend;
/// 3. refreshes every registered pattern via its own elimination/affected
///    pipeline (DER-II containment → EH-Tree → survivor repairs);
/// 4. returns a [`MatchDelta`] per handle — added/removed pairs plus a
///    monotone `result_version` — instead of k full result tables.
///
/// The backend covers the *union* of all registered patterns'
/// [`SlenRequirements`]; registration widens it in place
/// ([`SlenBackend::sync_requirements`]) and deregistration narrows it
/// ([`SlenBackend::narrow_requirements`]), so a bounded sparse index stays
/// proportional to what the surviving patterns actually consult.
#[derive(Debug)]
pub struct GpnmService<B: SlenBackend = PartitionedBackend> {
    graph: DataGraph,
    index: B,
    reqs: SlenRequirements,
    hint: RepairHint,
    sessions: Vec<(PatternHandle, PatternSession)>,
    next_handle: u64,
    tick: u64,
    refresh_threads: usize,
    front: ReadFront,
    publishing: bool,
    adaptive: Option<AdaptiveState>,
}

impl<B: SlenBackend + Clone> Clone for GpnmService<B> {
    /// The clone is an **independent** host with a fresh, unshared read
    /// front-end: sharing the original's front would let the clone's
    /// ticks publish over readers of the original. The clone republishes
    /// its sessions' current state, so its own `reader()` starts fully
    /// populated; subscriptions never carry over.
    fn clone(&self) -> Self {
        let clone = GpnmService {
            graph: self.graph.clone(),
            index: self.index.clone(),
            reqs: self.reqs.clone(),
            hint: self.hint,
            sessions: self.sessions.clone(),
            next_handle: self.next_handle,
            tick: self.tick,
            refresh_threads: self.refresh_threads,
            front: ReadFront::new(),
            publishing: self.publishing,
            adaptive: self.adaptive.clone(),
        };
        clone.republish_all();
        clone
    }
}

impl GpnmService<AnyBackend> {
    /// Start configuring a runtime-backed service — see [`ServiceBuilder`].
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::new()
    }
}

impl<B: SlenBackend> GpnmService<B> {
    /// A service over `graph` with a statically-chosen backend and no
    /// registered patterns: `GpnmService::<SparseIndex>::new(graph)`.
    /// Runtime configuration goes through [`GpnmService::builder`].
    pub fn new(graph: DataGraph) -> Self {
        let reqs = SlenRequirements::empty();
        let index = B::build(&graph, &reqs);
        Self::from_parts(graph, index, reqs, RepairHint::Accelerated)
    }

    fn from_parts(graph: DataGraph, index: B, reqs: SlenRequirements, hint: RepairHint) -> Self {
        GpnmService {
            graph,
            index,
            reqs,
            hint,
            sessions: Vec::new(),
            next_handle: 0,
            tick: 0,
            refresh_threads: 0,
            front: ReadFront::new(),
            publishing: true,
            adaptive: None,
        }
    }

    /// Publish every session's current state to (a fresh) front — the
    /// clone path, and harmless elsewhere.
    fn republish_all(&self) {
        if !self.publishing {
            return;
        }
        for (handle, sess) in &self.sessions {
            self.front.publish(
                *handle,
                ReadView {
                    result: sess.result.clone(),
                    result_version: sess.version,
                    tick: self.tick,
                },
            );
        }
    }

    /// Set the parallel-lane budget for the per-pattern refresh phase —
    /// see [`ServiceBuilder::refresh_threads`]. `0` keeps the sequential
    /// baseline. Safe to change between ticks.
    pub fn set_refresh_threads(&mut self, n: usize) {
        self.refresh_threads = n;
    }

    /// The configured refresh parallelism (`0` = sequential).
    pub fn refresh_threads(&self) -> usize {
        self.refresh_threads
    }

    /// Enable or disable the online cost-model controller. Enabled, each
    /// tick prices every pattern's [`RefreshStrategy`] arms against the
    /// batch features known before the refresh runs (committed updates,
    /// EH-Tree survivors) using per-unit costs fitted to this pattern's
    /// own observed timings, and tunes the refresh parallelism from the
    /// last tick's measured critical path. Disabling drops the fitted
    /// model; sessions keep whatever strategy the controller last chose.
    pub fn set_adaptive(&mut self, on: bool) {
        if !on {
            self.adaptive = None;
            return;
        }
        if self.adaptive.is_none() {
            self.adaptive = Some(AdaptiveState {
                controllers: self
                    .sessions
                    .iter()
                    .map(|(h, _)| (*h, StrategyController::with_seed(h.id())))
                    .collect(),
                tuner: ThreadTuner::default(),
                last_refresh: None,
            });
        }
    }

    /// Whether the online controller is driving this service.
    pub fn adaptive(&self) -> bool {
        self.adaptive.is_some()
    }

    /// Cumulative strategy-arm switches across all adaptive controllers
    /// (`0` when the controller is off).
    pub fn strategy_switches(&self) -> u64 {
        self.adaptive
            .as_ref()
            .map(|s| s.controllers.iter().map(|(_, c)| c.switches()).sum())
            .unwrap_or(0)
    }

    /// Pin `handle`'s refresh strategy for subsequent ticks. Every
    /// strategy reaches the same fixed point (the `service_equivalence`
    /// suite switches mid-stream and asserts bitwise equality), so this
    /// trades cost only. On an adaptive service the controller re-decides
    /// each tick, overriding a manual pin.
    pub fn set_refresh_strategy(
        &mut self,
        handle: PatternHandle,
        strategy: RefreshStrategy,
    ) -> Result<(), ServiceError> {
        self.sessions
            .iter_mut()
            .find(|(h, _)| *h == handle)
            .map(|(_, s)| s.strategy = strategy)
            .ok_or(ServiceError::UnknownHandle(handle))
    }

    /// The strategy `handle`'s next refresh will run under.
    pub fn refresh_strategy(&self, handle: PatternHandle) -> Result<RefreshStrategy, ServiceError> {
        Ok(self.session(handle)?.strategy)
    }

    /// The current data graph.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The shared `SLen` backend.
    pub fn backend(&self) -> &B {
        &self.index
    }

    /// The union requirement set the backend currently covers.
    pub fn requirements(&self) -> &SlenRequirements {
        &self.reqs
    }

    /// Batches applied so far.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Number of registered patterns.
    pub fn pattern_count(&self) -> usize {
        self.sessions.len()
    }

    /// Handles of every registered pattern, in registration order.
    pub fn handles(&self) -> Vec<PatternHandle> {
        self.sessions.iter().map(|(h, _)| *h).collect()
    }

    /// Whether this service publishes to its read front-end — see
    /// [`ServiceBuilder::publishing`].
    pub fn publishing(&self) -> bool {
        self.publishing
    }

    /// The last *published* snapshot of `handle` — the same view every
    /// concurrent reader holding [`GpnmService::reader`] sees. Unlike
    /// [`GpnmService::result`] this clones no data and takes no lock the
    /// writer holds across a tick; it errors with
    /// [`ServiceError::ReadFrontDisabled`] on a non-publishing service
    /// (e.g. a cluster's shard replica).
    pub fn read_view(&self, handle: PatternHandle) -> Result<Arc<ReadView>, ServiceError> {
        self.session(handle)?;
        if !self.publishing {
            return Err(ServiceError::ReadFrontDisabled);
        }
        self.front
            .read_view(handle)
            .map_err(|_| ServiceError::UnknownHandle(handle))
    }

    /// Subscribe to `handle`'s per-tick delta stream. Events arrive in
    /// `result_version` order, gap-free (a slow consumer gets a
    /// coalesced [`crate::SubEvent::Lagged`]); deregistration delivers a
    /// final [`crate::SubEvent::Closed`].
    pub fn subscribe(&self, handle: PatternHandle) -> Result<Subscription, ServiceError> {
        self.session(handle)?;
        if !self.publishing {
            return Err(ServiceError::ReadFrontDisabled);
        }
        self.front
            .subscribe(handle)
            .map_err(|_| ServiceError::UnknownHandle(handle))
    }

    /// A cloneable, `Send + Sync` handle onto this service's read
    /// front-end. Hand clones to reader threads: their
    /// [`ReadFront::read_view`] / [`ReadFront::subscribe`] calls proceed
    /// lock-free against this service's `&mut self` ticks.
    pub fn reader(&self) -> ReadFront {
        self.front.clone()
    }

    fn session(&self, handle: PatternHandle) -> Result<&PatternSession, ServiceError> {
        self.sessions
            .iter()
            .find(|(h, _)| *h == handle)
            .map(|(_, s)| s)
            .ok_or(ServiceError::UnknownHandle(handle))
    }

    /// The registered pattern behind `handle`.
    pub fn pattern(&self, handle: PatternHandle) -> Result<&PatternGraph, ServiceError> {
        Ok(&self.session(handle)?.pattern)
    }

    /// The semantics `handle` was registered under.
    pub fn semantics(&self, handle: PatternHandle) -> Result<MatchSemantics, ServiceError> {
        Ok(self.session(handle)?.semantics)
    }

    /// The full current result of `handle` (version
    /// [`GpnmService::result_version`]). Deltas are the streaming answer;
    /// this is the snapshot for late joiners.
    pub fn result(&self, handle: PatternHandle) -> Result<&MatchResult, ServiceError> {
        Ok(&self.session(handle)?.result)
    }

    /// How many ticks `handle`'s result has absorbed since registration.
    pub fn result_version(&self, handle: PatternHandle) -> Result<u64, ServiceError> {
        Ok(self.session(handle)?.version)
    }

    /// Register a standing pattern: widen the backend's requirement union,
    /// run the initial match, and return the handle its deltas will be
    /// keyed by. Cost is one initial query for *this* pattern (plus any
    /// sparse rows the widened union now demands) — existing patterns are
    /// untouched.
    pub fn register_pattern(
        &mut self,
        pattern: PatternGraph,
        semantics: MatchSemantics,
    ) -> Result<PatternHandle, ServiceError> {
        if pattern.node_count() == 0 {
            return Err(ServiceError::EmptyPattern);
        }
        self.reqs.absorb(&SlenRequirements::of_pattern(&pattern));
        self.index.sync_requirements(&self.graph, &self.reqs);
        let result = match_graph(&pattern, &self.graph, &self.index, semantics);
        self.register_pattern_with_result(pattern, semantics, result, 0)
    }

    /// Register a standing pattern **carrying** an already-computed
    /// result at `version` — the migration seam a cluster's
    /// `rebalance()` uses to move a pattern between shard replicas
    /// without re-matching it.
    ///
    /// Sound only when `result` is the pattern's exact current match on
    /// *this* service's graph (under `semantics`): shard replicas walk
    /// the same graph trajectory and results are graph-determined, so a
    /// result lifted off one replica is bitwise what this replica would
    /// compute. The backend's requirement union still widens and syncs
    /// here — only the initial match is skipped. `version` seeds the
    /// session's `result_version`, keeping the handle's delta stream
    /// monotone across the move.
    pub fn register_pattern_with_result(
        &mut self,
        pattern: PatternGraph,
        semantics: MatchSemantics,
        result: MatchResult,
        version: u64,
    ) -> Result<PatternHandle, ServiceError> {
        if pattern.node_count() == 0 {
            return Err(ServiceError::EmptyPattern);
        }
        self.reqs.absorb(&SlenRequirements::of_pattern(&pattern));
        self.index.sync_requirements(&self.graph, &self.reqs);
        let handle = PatternHandle(HandleId(self.next_handle));
        self.next_handle += 1;
        if self.publishing {
            self.front.publish(
                handle,
                ReadView {
                    result: result.clone(),
                    result_version: version,
                    tick: self.tick,
                },
            );
        }
        self.sessions.push((
            handle,
            PatternSession {
                pattern,
                semantics,
                result,
                version,
                strategy: RefreshStrategy::default(),
            },
        ));
        if let Some(state) = &mut self.adaptive {
            state
                .controllers
                .push((handle, StrategyController::with_seed(handle.id())));
        }
        Ok(handle)
    }

    /// Deregister a standing pattern and narrow the backend's requirement
    /// union to what the remaining patterns need — on a sparse backend
    /// this reclaims rows (and row depth) only the departed pattern
    /// consulted.
    pub fn deregister(&mut self, handle: PatternHandle) -> Result<(), ServiceError> {
        let pos = self
            .sessions
            .iter()
            .position(|(h, _)| *h == handle)
            .ok_or(ServiceError::UnknownHandle(handle))?;
        self.sessions.remove(pos);
        if let Some(state) = &mut self.adaptive {
            state.controllers.retain(|(h, _)| *h != handle);
        }
        // Terminate the handle's published state and subscriptions
        // (queued deltas drain first, then a final `Closed`).
        self.front.close(handle);
        let mut union = SlenRequirements::empty();
        for (_, s) in &self.sessions {
            union.absorb(&SlenRequirements::of_pattern(&s.pattern));
        }
        self.reqs = union;
        self.index.narrow_requirements(&self.graph, &self.reqs);
        Ok(())
    }

    /// Apply one data-update batch — **once** — and refresh every
    /// registered pattern, returning per-handle [`MatchDelta`]s.
    ///
    /// The batch is validated up front and rejected (typed, mutation-free)
    /// if it contains a pattern update or an invalid data update. On
    /// success the graph, the backend and every result reflect the
    /// post-batch state; per-pattern results are bitwise what a dedicated
    /// [`gpnm_engine::GpnmEngine`] running the same batch would hold, but
    /// the graph mutation and `SLen` repair were paid once, not
    /// once per pattern.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<TickReport, ServiceError> {
        batch.validate_data(&self.graph)?;
        self.apply_prevalidated(batch)
    }

    /// [`GpnmService::apply`] minus the up-front *data* validation — the
    /// seam a cluster uses to validate a batch **once** and fan the same
    /// committed work out to every shard replica.
    ///
    /// The caller promises the batch's data updates are valid against the
    /// current graph (i.e. [`gpnm_updates::UpdateBatch::validate_data`]
    /// passed on an identical replica). An invalid batch still surfaces a
    /// typed error — pattern updates are always refused mutation-free,
    /// exactly like [`GpnmService::apply`] — but an invalid *data* update
    /// surfaces possibly after part of the batch has mutated this
    /// service's state, so atomic refusal is the validating caller's
    /// responsibility.
    pub fn apply_prevalidated(&mut self, batch: &UpdateBatch) -> Result<TickReport, ServiceError> {
        if let Some(index) = batch.first_pattern_update() {
            return Err(ServiceError::PatternUpdateInBatch { index });
        }
        // The tick's telemetry: one root span covering the whole tick,
        // child spans per phase, and a `TickRecorder` as the single
        // bookkeeping path every measurement is written into exactly once
        // — `TickStats` is projected from the recorder at the end, and
        // `finish()` flushes the same numbers into the metrics registry.
        let tick_span = tracing::span!(
            tracing::Level::INFO,
            "tick",
            tick = self.tick + 1,
            patterns = self.sessions.len(),
            submitted = batch.len(),
        );
        let _tick_entered = tick_span.enter();
        let mut rec = TickRecorder::new();
        rec.pool_lanes = WorkerPool::global().lanes();
        let start = Instant::now();
        let io_before = self.index.io_stats();

        // Net-effect reduction. Data-update cancellation never consults the
        // pattern graph, so reducing against an empty pattern is exactly
        // what every per-pattern engine would compute.
        let t = Instant::now();
        let reduced = {
            let span = tracing::span!(tracing::Level::DEBUG, "reduce", submitted = batch.len());
            let _entered = span.enter();
            reduce_batch(&self.graph, &PatternGraph::new(), batch)
        };
        let reduce_time = t.elapsed();
        rec.reduce_ns = ns64(reduce_time);
        rec.updates_applied = reduced.len() as u64;

        if self.hint == RepairHint::Accelerated {
            self.index.prepare_accelerator(&self.graph);
        }

        // The shared single pass: each surviving update mutates the graph
        // and repairs the backend exactly once; every pattern derives its
        // repair plan from the shared delta *at this update's post-state*,
        // which is precisely where the single-pattern engine derives its
        // own.
        let commit_span = tracing::span!(tracing::Level::DEBUG, "commit", updates = reduced.len());
        let commit_entered = commit_span.enter();
        let mut slen_time = Duration::ZERO;
        let mut committed: Vec<CommittedUpdate> = Vec::with_capacity(reduced.len());
        let mut plans: Vec<Vec<RepairPlan>> = self
            .sessions
            .iter()
            .map(|_| Vec::with_capacity(reduced.len()))
            .collect();
        for u in reduced.updates() {
            let Update::Data(du) = u else {
                unreachable!("pattern updates rejected above");
            };
            let t = Instant::now();
            let cu = commit_data_update(&mut self.graph, &mut self.index, du, self.hint)?;
            slen_time += t.elapsed();
            tracing::event!(
                tracing::Level::TRACE,
                "update_committed",
                affected = cu.delta.affected.len(),
                slen_changes = cu.delta.len(),
            );
            for ((_, sess), pattern_plans) in self.sessions.iter().zip(plans.iter_mut()) {
                pattern_plans.push(plan_for_data_update(
                    du,
                    &cu.delta,
                    &sess.pattern,
                    &self.graph,
                    &sess.result,
                    cu.created,
                ));
            }
            committed.push(cu);
        }
        drop(commit_entered);
        let slen_changes = committed.iter().map(|c| c.delta.len()).sum();
        rec.commit_ns = ns64(slen_time);
        rec.affected_nodes = committed
            .iter()
            .map(|c| c.delta.affected.len() as u64)
            .sum();

        // Per-pattern refresh over the shared committed records. The
        // elimination analysis (DER-II containment + EH-Tree) consumes only
        // the shared deltas, so it is computed once and reused by every
        // pattern's survivor-repair pass; then delta extraction. From here
        // the graph and index are read-only, so the per-pattern work is
        // independent and fans out across `refresh_threads` pool lanes.
        let t = Instant::now();
        let shared = {
            let span = tracing::span!(tracing::Level::DEBUG, "detect", updates = committed.len());
            let _entered = span.enter();
            SharedElimination::detect(&committed)
        };
        rec.detect_ns = ns64(shared.detect_time + shared.tree_time);

        // Adaptive pre-refresh step: price each pattern's strategy arms
        // against this tick's known features and let the tuner set the
        // refresh parallelism from the last tick's critical path. Both
        // decisions trade cost only — every arm and lane count reaches
        // the same fixed point.
        let features = TickFeatures {
            updates: committed.len(),
            survivors: shared.survivors().len(),
        };
        let switches_before = self.strategy_switches();
        let mut effective_threads = self.refresh_threads;
        if let Some(state) = &mut self.adaptive {
            let hints = self.index.cost_hints();
            for (handle, sess) in self.sessions.iter_mut() {
                if let Some((_, ctl)) = state.controllers.iter_mut().find(|(h, _)| h == handle) {
                    sess.strategy = ctl.decide(&features, &hints);
                    if let Some(d) = ctl.last_decision() {
                        gpnm_telemetry::global()
                            .counter_with(
                                "gpnm_adaptive_decisions_total",
                                &[("arm", d.arm.name()), ("reason", d.reason)],
                            )
                            .inc();
                    }
                }
            }
            if let Some((total, max)) = state.last_refresh {
                effective_threads = state.tuner.decide(
                    total,
                    max,
                    self.sessions.len(),
                    WorkerPool::global().lanes(),
                );
            }
        }
        rec.strategy_switches = self.strategy_switches().saturating_sub(switches_before);
        rec.refresh_lanes = refresh_lanes(effective_threads, self.sessions.len());

        let refresh_span =
            tracing::span!(tracing::Level::DEBUG, "refresh", lanes = rec.refresh_lanes);
        let refresh_entered = refresh_span.enter();
        let outcomes = refresh_sessions(
            &self.graph,
            &self.index,
            &mut self.sessions,
            &plans,
            &shared,
            effective_threads,
            &refresh_span,
        );
        drop(refresh_entered);
        let refresh_time = t.elapsed();
        rec.refresh_ns = ns64(refresh_time);

        let mut eliminated = 0;
        let mut repair_calls = 0;
        let mut per_pattern_refresh_ns = Vec::with_capacity(outcomes.len());
        let mut deltas = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            eliminated += outcome.stats.eliminated;
            repair_calls += outcome.stats.repair_calls;
            per_pattern_refresh_ns.push((outcome.handle, outcome.refresh_ns));
            rec.per_pattern.push(PatternRefreshSample {
                handle: outcome.handle.id(),
                ns: u64::try_from(outcome.refresh_ns).unwrap_or(u64::MAX),
                strategy: outcome.strategy.name(),
            });
            deltas.push((outcome.handle, outcome.delta));
        }
        rec.eliminated = eliminated as u64;
        rec.repair_calls = repair_calls as u64;

        // Adaptive post-refresh step: fold the measured per-pattern
        // timings back into each controller's cost model and remember
        // the phase totals the tuner decides against next tick.
        if let Some(state) = &mut self.adaptive {
            let mut total = 0u128;
            let mut max = 0u128;
            for &(handle, ns) in per_pattern_refresh_ns.iter() {
                total += ns;
                max = max.max(ns);
                let strategy = self
                    .sessions
                    .iter()
                    .find(|(h, _)| *h == handle)
                    .map(|(_, s)| s.strategy)
                    .unwrap_or_default();
                if let Some((_, ctl)) = state.controllers.iter_mut().find(|(h, _)| *h == handle) {
                    ctl.observe(strategy, &features, ns);
                }
            }
            state.last_refresh = Some((total, max));
        }

        self.tick += 1;

        // Publish the committed epoch: every pattern's new view is
        // swapped in atomically (per handle), then the tick's deltas fan
        // out to subscribers. Readers were served the previous epoch for
        // the whole tick and switch to this one at the swap — never a
        // half-refreshed state.
        let t = Instant::now();
        if self.publishing {
            let span = tracing::span!(
                tracing::Level::DEBUG,
                "publish",
                patterns = self.sessions.len()
            );
            let _entered = span.enter();
            let items: Vec<(HandleId, ReadView, MatchDelta)> = self
                .sessions
                .iter()
                .zip(deltas.iter())
                .map(|((handle, sess), (_, delta))| {
                    (
                        HandleId::from(*handle),
                        ReadView {
                            result: sess.result.clone(),
                            result_version: sess.version,
                            tick: self.tick,
                        },
                        delta.clone(),
                    )
                })
                .collect();
            self.front.publish_tick(items);
            rec.publish_ns = ns64(t.elapsed());
        }

        // Paging delta, then flush: the recorder pushes everything it
        // accumulated into the cumulative metrics registry, and the
        // per-tick stats are projected from the very same recorder.
        rec.io = match (io_before, self.index.io_stats()) {
            (Some(before), Some(after)) => {
                let d = after.since(&before);
                Some(IoDelta {
                    hits: d.cache_hits,
                    misses: d.cache_misses,
                    evictions: d.cache_evictions,
                    pages_read: d.pages_read,
                    pages_written: d.pages_written,
                })
            }
            _ => None,
        };
        rec.finish();
        let stats = TickStats::from_recorder(&rec, self.strategy_switches(), &self.index);
        let registry = gpnm_telemetry::global();
        registry
            .gauge("gpnm_index_resident_rows")
            .set(stats.resident_rows as f64);
        registry
            .gauge("gpnm_index_mem_bytes")
            .set(stats.index_mem_bytes as f64);

        Ok(TickReport {
            tick: self.tick,
            updates_submitted: batch.len(),
            updates_applied: reduced.len(),
            slen_changes,
            eliminated,
            repair_calls,
            reduce_time,
            slen_time,
            refresh_time,
            total_time: start.elapsed(),
            ts_ms: gpnm_telemetry::clock::wall_ms(),
            deltas,
            stats,
        })
    }
}

impl<B: SlenBackend> PatternHost for GpnmService<B> {
    type Handle = PatternHandle;
    type Error = ServiceError;
    type Report = TickReport;

    fn graph(&self) -> &DataGraph {
        &self.graph
    }

    fn pattern(&self, handle: PatternHandle) -> Result<&PatternGraph, ServiceError> {
        GpnmService::pattern(self, handle)
    }

    fn semantics(&self, handle: PatternHandle) -> Result<MatchSemantics, ServiceError> {
        GpnmService::semantics(self, handle)
    }

    fn result(&self, handle: PatternHandle) -> Result<&MatchResult, ServiceError> {
        GpnmService::result(self, handle)
    }

    fn result_version(&self, handle: PatternHandle) -> Result<u64, ServiceError> {
        GpnmService::result_version(self, handle)
    }

    fn handles(&self) -> Vec<PatternHandle> {
        GpnmService::handles(self)
    }

    fn pattern_count(&self) -> usize {
        GpnmService::pattern_count(self)
    }

    fn tick(&self) -> u64 {
        GpnmService::tick(self)
    }

    fn register_pattern(
        &mut self,
        pattern: PatternGraph,
        semantics: MatchSemantics,
    ) -> Result<PatternHandle, ServiceError> {
        GpnmService::register_pattern(self, pattern, semantics)
    }

    fn deregister(&mut self, handle: PatternHandle) -> Result<(), ServiceError> {
        GpnmService::deregister(self, handle)
    }

    fn apply(&mut self, batch: &UpdateBatch) -> Result<TickReport, ServiceError> {
        GpnmService::apply(self, batch)
    }

    fn read_view(&self, handle: PatternHandle) -> Result<Arc<ReadView>, ServiceError> {
        GpnmService::read_view(self, handle)
    }

    fn subscribe(&self, handle: PatternHandle) -> Result<Subscription, ServiceError> {
        GpnmService::subscribe(self, handle)
    }

    fn reader(&self) -> ReadFront {
        GpnmService::reader(self)
    }
}

/// Parallel tasks the refresh phase actually spawns for `k` sessions
/// under the `refresh_threads` knob (`0` = sequential baseline = one
/// lane). Sessions are dealt in contiguous chunks of `⌈k / min(threads,
/// k)⌉`, so the spawned-task count can be *below* the requested thread
/// count (e.g. 4 sessions over 3 requested lanes → chunks of 2 → 2
/// tasks) — this reports the real number, which is what `TickStats`
/// consumers tune against.
fn refresh_lanes(refresh_threads: usize, k: usize) -> usize {
    if refresh_threads == 0 || k <= 1 {
        return 1;
    }
    let chunk = k.div_ceil(refresh_threads.min(k));
    k.div_ceil(chunk)
}

/// One pattern's refresh outcome, produced on whichever lane ran it.
struct RefreshOutcome {
    handle: PatternHandle,
    stats: gpnm_engine::pipeline::RefreshStats,
    delta: MatchDelta,
    refresh_ns: u128,
    strategy: RefreshStrategy,
}

/// Refresh every session against the post-commit graph/index, sequentially
/// (`refresh_threads == 0`) or fanned out in contiguous chunks across the
/// shared worker pool. The two paths run the same per-session code on the
/// same inputs, so their outputs are bitwise identical — asserted by the
/// cluster equivalence proptests.
fn refresh_sessions<B: SlenBackend>(
    graph: &DataGraph,
    index: &B,
    sessions: &mut [(PatternHandle, PatternSession)],
    plans: &[Vec<RepairPlan>],
    shared: &SharedElimination,
    refresh_threads: usize,
    parent: &tracing::Span,
) -> Vec<RefreshOutcome> {
    let refresh_one = |(handle, sess): &mut (PatternHandle, PatternSession),
                       pattern_plans: &Vec<RepairPlan>|
     -> RefreshOutcome {
        // Explicit parenting: under pool fan-out this closure runs on a
        // worker thread whose contextual span stack is empty, so the
        // pattern span names the refresh span as parent directly — the
        // trace nests identically on the sequential and parallel paths.
        let span = tracing::span!(
            parent: parent,
            tracing::Level::DEBUG,
            "pattern_refresh",
            handle = handle.id(),
            strategy = sess.strategy.name(),
        );
        let _entered = span.enter();
        let t = Instant::now();
        let prev = sess.result.clone();
        let stats = refresh_pattern_strategy(
            sess.strategy,
            &sess.pattern,
            graph,
            index,
            sess.semantics,
            &mut sess.result,
            pattern_plans,
            shared,
        );
        sess.version += 1;
        tracing::event!(
            tracing::Level::TRACE,
            "pattern_refreshed",
            eliminated = stats.eliminated,
            repairs = stats.repair_calls,
        );
        RefreshOutcome {
            handle: *handle,
            stats,
            delta: sess.result.delta_from(&prev, sess.version),
            refresh_ns: t.elapsed().as_nanos(),
            strategy: sess.strategy,
        }
    };

    let lanes = refresh_lanes(refresh_threads, sessions.len());
    if lanes <= 1 || sessions.len() <= 1 {
        return sessions
            .iter_mut()
            .zip(plans.iter())
            .map(|(entry, pattern_plans)| refresh_one(entry, pattern_plans))
            .collect();
    }

    // Chunked fan-out: one task per lane over contiguous session slices,
    // each writing into its own pre-allocated outcome slot. `chunks_mut`
    // hands every task a disjoint `&mut` view, so no locking is needed;
    // the pool scope joins all tasks before the borrows end.
    let mut slots: Vec<Option<RefreshOutcome>> = Vec::new();
    slots.resize_with(sessions.len(), || None);
    let chunk = sessions.len().div_ceil(lanes);
    WorkerPool::global().scope(|scope| {
        for ((session_chunk, plan_chunk), slot_chunk) in sessions
            .chunks_mut(chunk)
            .zip(plans.chunks(chunk))
            .zip(slots.chunks_mut(chunk))
        {
            let refresh_one = &refresh_one;
            scope.spawn(move || {
                for ((entry, pattern_plans), slot) in session_chunk
                    .iter_mut()
                    .zip(plan_chunk.iter())
                    .zip(slot_chunk.iter_mut())
                {
                    *slot = Some(refresh_one(entry, pattern_plans));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every chunk task filled its slots"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpnm_distance::SparseIndex;
    use gpnm_graph::paper::fig1;
    use gpnm_graph::GraphError;
    use gpnm_updates::{DataUpdate, PatternUpdate};

    #[test]
    fn register_apply_deregister_lifecycle() {
        let f = fig1();
        let mut service = GpnmService::<SparseIndex>::new(f.graph.clone());
        assert_eq!(service.pattern_count(), 0);
        let h = service
            .register_pattern(f.pattern.clone(), MatchSemantics::Simulation)
            .expect("register");
        assert_eq!(service.pattern_count(), 1);
        assert_eq!(service.result_version(h).unwrap(), 0);
        // Initial result equals a direct match.
        let direct = match_graph(
            &f.pattern,
            &f.graph,
            &SparseIndex::build(&f.graph, &SlenRequirements::of_pattern(&f.pattern)),
            MatchSemantics::Simulation,
        );
        assert_eq!(service.result(h).unwrap(), &direct);

        let mut batch = UpdateBatch::new();
        batch.push(DataUpdate::InsertEdge {
            from: f.se1,
            to: f.te2,
        });
        let report = service.apply(&batch).expect("valid batch");
        assert_eq!(report.tick, 1);
        assert_eq!(report.updates_applied, 1);
        assert!(report.slen_changes > 0);
        assert_eq!(service.result_version(h).unwrap(), 1);
        assert_eq!(report.delta_for(h).unwrap().result_version, 1);

        service.deregister(h).expect("deregister");
        assert_eq!(service.pattern_count(), 0);
        assert_eq!(
            service.result(h),
            Err(ServiceError::UnknownHandle(h)),
            "stale handle is a typed error"
        );
        assert_eq!(service.backend().resident_rows(), 0, "rows reclaimed");
    }

    #[test]
    fn pattern_updates_are_rejected_with_position() {
        let f = fig1();
        let mut service = GpnmService::<SparseIndex>::new(f.graph.clone());
        service
            .register_pattern(f.pattern.clone(), MatchSemantics::Simulation)
            .unwrap();
        let mut batch = UpdateBatch::new();
        batch.push(DataUpdate::InsertEdge {
            from: f.se1,
            to: f.te2,
        });
        batch.push(PatternUpdate::DeleteEdge {
            from: f.p_pm,
            to: f.p_se,
        });
        let err = service.apply(&batch).expect_err("pattern update refused");
        assert_eq!(err, ServiceError::PatternUpdateInBatch { index: 1 });
        assert_eq!(service.tick(), 0, "nothing applied");
        assert!(!service.graph().has_edge(f.se1, f.te2));
        // The prevalidated seam refuses pattern updates the same typed,
        // mutation-free way — it only skips *data* validation.
        let err = service
            .apply_prevalidated(&batch)
            .expect_err("pattern update refused on the prevalidated seam too");
        assert_eq!(err, ServiceError::PatternUpdateInBatch { index: 1 });
        assert_eq!(service.tick(), 0, "nothing applied");
        assert!(!service.graph().has_edge(f.se1, f.te2));
    }

    #[test]
    fn invalid_batches_are_atomic() {
        let f = fig1();
        let mut service = GpnmService::<SparseIndex>::new(f.graph.clone());
        let h = service
            .register_pattern(f.pattern.clone(), MatchSemantics::Simulation)
            .unwrap();
        let before = service.result(h).unwrap().clone();
        let mut batch = UpdateBatch::new();
        batch.push(DataUpdate::InsertEdge {
            from: f.se1,
            to: f.te2,
        }); // fine alone
        batch.push(DataUpdate::InsertEdge {
            from: f.pm1,
            to: f.se2, // duplicate
        });
        let err = service.apply(&batch).expect_err("duplicate edge");
        assert_eq!(
            err,
            ServiceError::InvalidBatch(GraphError::DuplicateEdge(f.pm1, f.se2))
        );
        assert!(!service.graph().has_edge(f.se1, f.te2), "no partial apply");
        assert_eq!(service.result(h).unwrap(), &before);
        // Still usable afterwards.
        let mut good = UpdateBatch::new();
        good.push(DataUpdate::InsertEdge {
            from: f.se1,
            to: f.te2,
        });
        service.apply(&good).expect("valid batch after rejection");
    }

    #[test]
    fn builder_guards_dense_memory() {
        let f = fig1();
        // An absurdly small budget refuses even the 8-node dense build.
        let err = GpnmService::builder()
            .backend(BackendKind::Dense)
            .max_index_gb(1.0e-9)
            .build(f.graph.clone())
            .expect_err("tiny budget");
        assert!(matches!(err, ServiceError::IndexTooLarge { .. }));
        // Sparse is never refused.
        let service = GpnmService::builder()
            .backend(BackendKind::Sparse)
            .max_index_gb(1.0e-9)
            .build(f.graph.clone())
            .expect("sparse ignores the dense budget");
        assert_eq!(service.backend().backend_kind(), BackendKind::Sparse);
        // Nonsense budgets are a typed error, not a silent pass.
        assert!(matches!(
            GpnmService::builder()
                .max_index_gb(f64::NAN)
                .build(f.graph.clone()),
            Err(ServiceError::InvalidConfig(_))
        ));
        assert!(GpnmService::builder().build(f.graph).is_ok());
    }

    #[test]
    fn empty_pattern_is_refused() {
        let f = fig1();
        let mut service = GpnmService::<SparseIndex>::new(f.graph);
        assert_eq!(
            service.register_pattern(PatternGraph::new(), MatchSemantics::Simulation),
            Err(ServiceError::EmptyPattern)
        );
    }

    #[test]
    fn parallel_refresh_matches_sequential_bitwise() {
        let f = fig1();
        let mut seq = GpnmService::<SparseIndex>::new(f.graph.clone());
        let mut par = GpnmService::<SparseIndex>::new(f.graph.clone());
        par.set_refresh_threads(4);
        assert_eq!(par.refresh_threads(), 4);
        let mut handles = Vec::new();
        for semantics in [MatchSemantics::Simulation, MatchSemantics::DualSimulation] {
            let a = seq.register_pattern(f.pattern.clone(), semantics).unwrap();
            let b = par.register_pattern(f.pattern.clone(), semantics).unwrap();
            assert_eq!(a, b);
            handles.push(a);
        }
        let mut batch = UpdateBatch::new();
        batch.push(DataUpdate::InsertEdge {
            from: f.se1,
            to: f.te2,
        });
        batch.push(DataUpdate::DeleteEdge {
            from: f.se1,
            to: f.s1,
        });
        let seq_report = seq.apply(&batch).expect("valid");
        let par_report = par.apply(&batch).expect("valid");
        assert_eq!(seq_report.stats.refresh_lanes, 1);
        assert_eq!(par_report.stats.refresh_lanes, 2, "capped at k sessions");
        for &h in &handles {
            assert_eq!(seq.result(h).unwrap(), par.result(h).unwrap());
            assert_eq!(
                seq_report.delta_for(h).unwrap(),
                par_report.delta_for(h).unwrap()
            );
        }
    }

    #[test]
    fn refresh_lanes_reports_actual_tasks() {
        assert_eq!(refresh_lanes(0, 8), 1, "sequential baseline");
        assert_eq!(refresh_lanes(4, 0), 1);
        assert_eq!(refresh_lanes(4, 1), 1);
        assert_eq!(refresh_lanes(3, 4), 2, "chunks of 2 → 2 tasks, not 3");
        assert_eq!(refresh_lanes(3, 5), 3, "chunks 2+2+1");
        assert_eq!(refresh_lanes(16, 4), 4);
    }

    #[test]
    fn tick_stats_account_the_tick() {
        let f = fig1();
        let mut service = GpnmService::<SparseIndex>::new(f.graph.clone());
        let h = service
            .register_pattern(f.pattern.clone(), MatchSemantics::Simulation)
            .unwrap();
        let mut batch = UpdateBatch::new();
        batch.push(DataUpdate::InsertEdge {
            from: f.se1,
            to: f.te2,
        });
        let report = service.apply(&batch).expect("valid");
        let stats = &report.stats;
        assert_eq!(stats.per_pattern_refresh_ns.len(), 1);
        assert_eq!(stats.per_pattern_refresh_ns[0].0, h);
        assert_eq!(stats.shared_repair_ns, report.slen_time.as_nanos());
        assert_eq!(stats.eliminated, report.eliminated);
        assert_eq!(stats.repair_calls, report.repair_calls);
        assert!(stats.affected_nodes > 0, "the insert disturbed distances");
        assert!(stats.refresh_total_ns() >= stats.refresh_max_ns());
        let rendered = stats.render();
        assert!(rendered.contains("shared_repair"));
        assert!(rendered.contains("pattern #0"));
    }

    #[test]
    fn handles_are_never_reissued() {
        let f = fig1();
        let mut service = GpnmService::<SparseIndex>::new(f.graph);
        let a = service
            .register_pattern(f.pattern.clone(), MatchSemantics::Simulation)
            .unwrap();
        service.deregister(a).unwrap();
        let b = service
            .register_pattern(f.pattern.clone(), MatchSemantics::DualSimulation)
            .unwrap();
        assert_ne!(a, b);
        assert!(service.result(a).is_err());
        assert!(service.result(b).is_ok());
    }
}
