//! The continuous-query service: many standing patterns, one shared
//! single-pass repair per tick.

use std::time::{Duration, Instant};

use gpnm_distance::{
    AnyBackend, BackendKind, PartitionedBackend, RepairHint, SlenBackend, SlenRequirements,
};
use gpnm_engine::pipeline::{
    commit_data_update, plan_for_data_update, refresh_pattern_shared, CommittedUpdate,
    SharedElimination,
};
use gpnm_graph::{DataGraph, PatternGraph};
use gpnm_matcher::{match_graph, MatchDelta, MatchResult, MatchSemantics, RepairPlan};
use gpnm_updates::{reduce_batch, Update, UpdateBatch};

use crate::error::ServiceError;

/// Opaque id of one registered standing pattern. Handles are unique for
/// the lifetime of the service — a deregistered handle is never reissued,
/// so a stale one can only ever yield [`ServiceError::UnknownHandle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternHandle(u64);

impl PatternHandle {
    /// The numeric id (stable, ascending in registration order).
    pub fn id(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for PatternHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pattern #{}", self.0)
    }
}

/// One registered pattern's standing state.
#[derive(Debug, Clone)]
struct PatternSession {
    pattern: PatternGraph,
    semantics: MatchSemantics,
    result: MatchResult,
    version: u64,
}

/// What one [`GpnmService::apply`] tick did: shared-work accounting plus
/// one [`MatchDelta`] per registered pattern.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// 1-based tick number (the batch count applied so far).
    pub tick: u64,
    /// Updates in the submitted batch.
    pub updates_submitted: usize,
    /// Updates surviving net-effect reduction (the ones committed).
    pub updates_applied: usize,
    /// Distance pairs the shared `SLen` repair changed.
    pub slen_changes: usize,
    /// Per-pattern repair passes the EH-Trees eliminated, summed.
    pub eliminated: usize,
    /// Per-pattern repair passes run, summed.
    pub repair_calls: usize,
    /// Net-effect reduction time.
    pub reduce_time: Duration,
    /// Shared graph + `SLen` commit time (paid once, not per pattern).
    pub slen_time: Duration,
    /// Per-pattern detection + repair + diff time, summed.
    pub refresh_time: Duration,
    /// End-to-end wall time of the tick.
    pub total_time: Duration,
    /// Per-pattern deltas, in registration order.
    pub deltas: Vec<(PatternHandle, MatchDelta)>,
}

impl TickReport {
    /// The delta of one registered pattern, if it is part of this tick.
    pub fn delta_for(&self, handle: PatternHandle) -> Option<&MatchDelta> {
        self.deltas
            .iter()
            .find(|(h, _)| *h == handle)
            .map(|(_, d)| d)
    }

    /// Match pairs gained across all patterns.
    pub fn total_added(&self) -> usize {
        self.deltas.iter().map(|(_, d)| d.added.len()).sum()
    }

    /// Match pairs lost across all patterns.
    pub fn total_removed(&self) -> usize {
        self.deltas.iter().map(|(_, d)| d.removed.len()).sum()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "tick {}: ΔG={} (net {}), slen_changes={}, patterns={}, +{} −{}, total={:?}",
            self.tick,
            self.updates_submitted,
            self.updates_applied,
            self.slen_changes,
            self.deltas.len(),
            self.total_added(),
            self.total_removed(),
            self.total_time,
        )
    }
}

/// Fallible, builder-style construction of a runtime-configured service —
/// replaces the panicking constructor zoo for deployments that pick the
/// backend from configuration.
///
/// ```
/// use gpnm_distance::BackendKind;
/// use gpnm_service::GpnmService;
///
/// let fig = gpnm_graph::paper::fig1();
/// let service = GpnmService::builder()
///     .backend(BackendKind::Sparse)
///     .max_index_gb(4)
///     .build(fig.graph)
///     .expect("sparse builds are never refused");
/// ```
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    kind: BackendKind,
    max_index_gb: f64,
    hint: RepairHint,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder {
            kind: BackendKind::Partitioned,
            max_index_gb: 4.0,
            hint: RepairHint::Accelerated,
        }
    }
}

impl ServiceBuilder {
    /// A builder with the defaults: partitioned backend, 4 GiB dense-index
    /// budget, accelerated repair.
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the `SLen` backend.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.kind = kind;
        self
    }

    /// Memory budget for dense backends, in GiB. [`ServiceBuilder::build`]
    /// refuses a dense matrix whose estimate exceeds it (instead of
    /// handing the OOM killer a 40 GiB allocation); sparse backends are
    /// never refused.
    pub fn max_index_gb(mut self, gb: impl Into<f64>) -> Self {
        self.max_index_gb = gb.into();
        self
    }

    /// Choose how deletion rows are recomputed (default
    /// [`RepairHint::Accelerated`]).
    pub fn repair_hint(mut self, hint: RepairHint) -> Self {
        self.hint = hint;
        self
    }

    /// Build the service over `graph`. Fails — instead of panicking or
    /// OOMing — when the configuration cannot be honored.
    pub fn build(self, graph: DataGraph) -> Result<GpnmService<AnyBackend>, ServiceError> {
        if !self.max_index_gb.is_finite() || self.max_index_gb <= 0.0 {
            return Err(ServiceError::InvalidConfig(format!(
                "max_index_gb must be a positive finite number, got {}",
                self.max_index_gb
            )));
        }
        if let Some(estimated_bytes) = self.kind.estimated_index_bytes(graph.slot_count()) {
            let limit_bytes = (self.max_index_gb * (1u64 << 30) as f64) as u128;
            if estimated_bytes > limit_bytes {
                return Err(ServiceError::IndexTooLarge {
                    nodes: graph.slot_count(),
                    estimated_bytes,
                    limit_bytes,
                });
            }
        }
        let reqs = SlenRequirements::empty();
        let index = AnyBackend::of_kind(self.kind, &graph, &reqs);
        Ok(GpnmService::from_parts(graph, index, reqs, self.hint))
    }
}

/// A continuous-query GPNM service: **one** data graph and **one** `SLen`
/// backend serving **many** registered standing patterns.
///
/// Where a [`gpnm_engine::GpnmEngine`] answers "what does this one pattern
/// match after this batch", the service answers "what changed for *every*
/// standing pattern" — and pays the expensive part (graph mutation +
/// `SLen` repair) once per batch instead of once per pattern. Each
/// [`GpnmService::apply`] tick:
///
/// 1. rejects pattern updates and invalid data updates with a typed
///    [`ServiceError`], before any mutation;
/// 2. net-reduces the batch and commits it through one shared
///    probe-free repair pass over the backend;
/// 3. refreshes every registered pattern via its own elimination/affected
///    pipeline (DER-II containment → EH-Tree → survivor repairs);
/// 4. returns a [`MatchDelta`] per handle — added/removed pairs plus a
///    monotone `result_version` — instead of k full result tables.
///
/// The backend covers the *union* of all registered patterns'
/// [`SlenRequirements`]; registration widens it in place
/// ([`SlenBackend::sync_requirements`]) and deregistration narrows it
/// ([`SlenBackend::narrow_requirements`]), so a bounded sparse index stays
/// proportional to what the surviving patterns actually consult.
#[derive(Debug, Clone)]
pub struct GpnmService<B: SlenBackend = PartitionedBackend> {
    graph: DataGraph,
    index: B,
    reqs: SlenRequirements,
    hint: RepairHint,
    sessions: Vec<(PatternHandle, PatternSession)>,
    next_handle: u64,
    tick: u64,
}

impl GpnmService<AnyBackend> {
    /// Start configuring a runtime-backed service — see [`ServiceBuilder`].
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::new()
    }
}

impl<B: SlenBackend> GpnmService<B> {
    /// A service over `graph` with a statically-chosen backend and no
    /// registered patterns: `GpnmService::<SparseIndex>::new(graph)`.
    /// Runtime configuration goes through [`GpnmService::builder`].
    pub fn new(graph: DataGraph) -> Self {
        let reqs = SlenRequirements::empty();
        let index = B::build(&graph, &reqs);
        Self::from_parts(graph, index, reqs, RepairHint::Accelerated)
    }

    fn from_parts(graph: DataGraph, index: B, reqs: SlenRequirements, hint: RepairHint) -> Self {
        GpnmService {
            graph,
            index,
            reqs,
            hint,
            sessions: Vec::new(),
            next_handle: 0,
            tick: 0,
        }
    }

    /// The current data graph.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The shared `SLen` backend.
    pub fn backend(&self) -> &B {
        &self.index
    }

    /// The union requirement set the backend currently covers.
    pub fn requirements(&self) -> &SlenRequirements {
        &self.reqs
    }

    /// Batches applied so far.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Number of registered patterns.
    pub fn pattern_count(&self) -> usize {
        self.sessions.len()
    }

    /// Handles of every registered pattern, in registration order.
    pub fn handles(&self) -> impl Iterator<Item = PatternHandle> + '_ {
        self.sessions.iter().map(|(h, _)| *h)
    }

    fn session(&self, handle: PatternHandle) -> Result<&PatternSession, ServiceError> {
        self.sessions
            .iter()
            .find(|(h, _)| *h == handle)
            .map(|(_, s)| s)
            .ok_or(ServiceError::UnknownHandle(handle))
    }

    /// The registered pattern behind `handle`.
    pub fn pattern(&self, handle: PatternHandle) -> Result<&PatternGraph, ServiceError> {
        Ok(&self.session(handle)?.pattern)
    }

    /// The semantics `handle` was registered under.
    pub fn semantics(&self, handle: PatternHandle) -> Result<MatchSemantics, ServiceError> {
        Ok(self.session(handle)?.semantics)
    }

    /// The full current result of `handle` (version
    /// [`GpnmService::result_version`]). Deltas are the streaming answer;
    /// this is the snapshot for late joiners.
    pub fn result(&self, handle: PatternHandle) -> Result<&MatchResult, ServiceError> {
        Ok(&self.session(handle)?.result)
    }

    /// How many ticks `handle`'s result has absorbed since registration.
    pub fn result_version(&self, handle: PatternHandle) -> Result<u64, ServiceError> {
        Ok(self.session(handle)?.version)
    }

    /// Register a standing pattern: widen the backend's requirement union,
    /// run the initial match, and return the handle its deltas will be
    /// keyed by. Cost is one initial query for *this* pattern (plus any
    /// sparse rows the widened union now demands) — existing patterns are
    /// untouched.
    pub fn register_pattern(
        &mut self,
        pattern: PatternGraph,
        semantics: MatchSemantics,
    ) -> Result<PatternHandle, ServiceError> {
        if pattern.node_count() == 0 {
            return Err(ServiceError::EmptyPattern);
        }
        self.reqs.absorb(&SlenRequirements::of_pattern(&pattern));
        self.index.sync_requirements(&self.graph, &self.reqs);
        let result = match_graph(&pattern, &self.graph, &self.index, semantics);
        let handle = PatternHandle(self.next_handle);
        self.next_handle += 1;
        self.sessions.push((
            handle,
            PatternSession {
                pattern,
                semantics,
                result,
                version: 0,
            },
        ));
        Ok(handle)
    }

    /// Deregister a standing pattern and narrow the backend's requirement
    /// union to what the remaining patterns need — on a sparse backend
    /// this reclaims rows (and row depth) only the departed pattern
    /// consulted.
    pub fn deregister(&mut self, handle: PatternHandle) -> Result<(), ServiceError> {
        let pos = self
            .sessions
            .iter()
            .position(|(h, _)| *h == handle)
            .ok_or(ServiceError::UnknownHandle(handle))?;
        self.sessions.remove(pos);
        let mut union = SlenRequirements::empty();
        for (_, s) in &self.sessions {
            union.absorb(&SlenRequirements::of_pattern(&s.pattern));
        }
        self.reqs = union;
        self.index.narrow_requirements(&self.graph, &self.reqs);
        Ok(())
    }

    /// Apply one data-update batch — **once** — and refresh every
    /// registered pattern, returning per-handle [`MatchDelta`]s.
    ///
    /// The batch is validated up front and rejected (typed, mutation-free)
    /// if it contains a pattern update or an invalid data update. On
    /// success the graph, the backend and every result reflect the
    /// post-batch state; per-pattern results are bitwise what a dedicated
    /// [`gpnm_engine::GpnmEngine`] running the same batch would hold, but
    /// the graph mutation and `SLen` repair were paid once, not
    /// once per pattern.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<TickReport, ServiceError> {
        if let Some(index) = batch.first_pattern_update() {
            return Err(ServiceError::PatternUpdateInBatch { index });
        }
        batch.validate_data(&self.graph)?;
        let start = Instant::now();

        // Net-effect reduction. Data-update cancellation never consults the
        // pattern graph, so reducing against an empty pattern is exactly
        // what every per-pattern engine would compute.
        let t = Instant::now();
        let reduced = reduce_batch(&self.graph, &PatternGraph::new(), batch);
        let reduce_time = t.elapsed();

        if self.hint == RepairHint::Accelerated {
            self.index.prepare_accelerator(&self.graph);
        }

        // The shared single pass: each surviving update mutates the graph
        // and repairs the backend exactly once; every pattern derives its
        // repair plan from the shared delta *at this update's post-state*,
        // which is precisely where the single-pattern engine derives its
        // own.
        let mut slen_time = Duration::ZERO;
        let mut committed: Vec<CommittedUpdate> = Vec::with_capacity(reduced.len());
        let mut plans: Vec<Vec<RepairPlan>> = self
            .sessions
            .iter()
            .map(|_| Vec::with_capacity(reduced.len()))
            .collect();
        for u in reduced.updates() {
            let Update::Data(du) = u else {
                unreachable!("pattern updates rejected above");
            };
            let t = Instant::now();
            let cu = commit_data_update(&mut self.graph, &mut self.index, du, self.hint)?;
            slen_time += t.elapsed();
            for ((_, sess), pattern_plans) in self.sessions.iter().zip(plans.iter_mut()) {
                pattern_plans.push(plan_for_data_update(
                    du,
                    &cu.delta,
                    &sess.pattern,
                    &self.graph,
                    &sess.result,
                    cu.created,
                ));
            }
            committed.push(cu);
        }
        let slen_changes = committed.iter().map(|c| c.delta.len()).sum();

        // Per-pattern refresh over the shared committed records. The
        // elimination analysis (DER-II containment + EH-Tree) consumes only
        // the shared deltas, so it is computed once and reused by every
        // pattern's survivor-repair pass; then delta extraction.
        let t = Instant::now();
        let shared = SharedElimination::detect(&committed);
        let mut eliminated = 0;
        let mut repair_calls = 0;
        let mut deltas = Vec::with_capacity(self.sessions.len());
        for ((handle, sess), pattern_plans) in self.sessions.iter_mut().zip(plans.iter()) {
            let prev = sess.result.clone();
            let stats = refresh_pattern_shared(
                &sess.pattern,
                &self.graph,
                &self.index,
                sess.semantics,
                &mut sess.result,
                pattern_plans,
                &shared,
            );
            eliminated += stats.eliminated;
            repair_calls += stats.repair_calls;
            sess.version += 1;
            deltas.push((*handle, sess.result.delta_from(&prev, sess.version)));
        }
        let refresh_time = t.elapsed();

        self.tick += 1;
        Ok(TickReport {
            tick: self.tick,
            updates_submitted: batch.len(),
            updates_applied: reduced.len(),
            slen_changes,
            eliminated,
            repair_calls,
            reduce_time,
            slen_time,
            refresh_time,
            total_time: start.elapsed(),
            deltas,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpnm_distance::SparseIndex;
    use gpnm_graph::paper::fig1;
    use gpnm_graph::GraphError;
    use gpnm_updates::{DataUpdate, PatternUpdate};

    #[test]
    fn register_apply_deregister_lifecycle() {
        let f = fig1();
        let mut service = GpnmService::<SparseIndex>::new(f.graph.clone());
        assert_eq!(service.pattern_count(), 0);
        let h = service
            .register_pattern(f.pattern.clone(), MatchSemantics::Simulation)
            .expect("register");
        assert_eq!(service.pattern_count(), 1);
        assert_eq!(service.result_version(h).unwrap(), 0);
        // Initial result equals a direct match.
        let direct = match_graph(
            &f.pattern,
            &f.graph,
            &SparseIndex::build(&f.graph, &SlenRequirements::of_pattern(&f.pattern)),
            MatchSemantics::Simulation,
        );
        assert_eq!(service.result(h).unwrap(), &direct);

        let mut batch = UpdateBatch::new();
        batch.push(DataUpdate::InsertEdge {
            from: f.se1,
            to: f.te2,
        });
        let report = service.apply(&batch).expect("valid batch");
        assert_eq!(report.tick, 1);
        assert_eq!(report.updates_applied, 1);
        assert!(report.slen_changes > 0);
        assert_eq!(service.result_version(h).unwrap(), 1);
        assert_eq!(report.delta_for(h).unwrap().result_version, 1);

        service.deregister(h).expect("deregister");
        assert_eq!(service.pattern_count(), 0);
        assert_eq!(
            service.result(h),
            Err(ServiceError::UnknownHandle(h)),
            "stale handle is a typed error"
        );
        assert_eq!(service.backend().resident_rows(), 0, "rows reclaimed");
    }

    #[test]
    fn pattern_updates_are_rejected_with_position() {
        let f = fig1();
        let mut service = GpnmService::<SparseIndex>::new(f.graph.clone());
        service
            .register_pattern(f.pattern.clone(), MatchSemantics::Simulation)
            .unwrap();
        let mut batch = UpdateBatch::new();
        batch.push(DataUpdate::InsertEdge {
            from: f.se1,
            to: f.te2,
        });
        batch.push(PatternUpdate::DeleteEdge {
            from: f.p_pm,
            to: f.p_se,
        });
        let err = service.apply(&batch).expect_err("pattern update refused");
        assert_eq!(err, ServiceError::PatternUpdateInBatch { index: 1 });
        assert_eq!(service.tick(), 0, "nothing applied");
        assert!(!service.graph().has_edge(f.se1, f.te2));
    }

    #[test]
    fn invalid_batches_are_atomic() {
        let f = fig1();
        let mut service = GpnmService::<SparseIndex>::new(f.graph.clone());
        let h = service
            .register_pattern(f.pattern.clone(), MatchSemantics::Simulation)
            .unwrap();
        let before = service.result(h).unwrap().clone();
        let mut batch = UpdateBatch::new();
        batch.push(DataUpdate::InsertEdge {
            from: f.se1,
            to: f.te2,
        }); // fine alone
        batch.push(DataUpdate::InsertEdge {
            from: f.pm1,
            to: f.se2, // duplicate
        });
        let err = service.apply(&batch).expect_err("duplicate edge");
        assert_eq!(
            err,
            ServiceError::InvalidBatch(GraphError::DuplicateEdge(f.pm1, f.se2))
        );
        assert!(!service.graph().has_edge(f.se1, f.te2), "no partial apply");
        assert_eq!(service.result(h).unwrap(), &before);
        // Still usable afterwards.
        let mut good = UpdateBatch::new();
        good.push(DataUpdate::InsertEdge {
            from: f.se1,
            to: f.te2,
        });
        service.apply(&good).expect("valid batch after rejection");
    }

    #[test]
    fn builder_guards_dense_memory() {
        let f = fig1();
        // An absurdly small budget refuses even the 8-node dense build.
        let err = GpnmService::builder()
            .backend(BackendKind::Dense)
            .max_index_gb(1.0e-9)
            .build(f.graph.clone())
            .expect_err("tiny budget");
        assert!(matches!(err, ServiceError::IndexTooLarge { .. }));
        // Sparse is never refused.
        let service = GpnmService::builder()
            .backend(BackendKind::Sparse)
            .max_index_gb(1.0e-9)
            .build(f.graph.clone())
            .expect("sparse ignores the dense budget");
        assert_eq!(service.backend().backend_kind(), BackendKind::Sparse);
        // Nonsense budgets are a typed error, not a silent pass.
        assert!(matches!(
            GpnmService::builder()
                .max_index_gb(f64::NAN)
                .build(f.graph.clone()),
            Err(ServiceError::InvalidConfig(_))
        ));
        assert!(GpnmService::builder().build(f.graph).is_ok());
    }

    #[test]
    fn empty_pattern_is_refused() {
        let f = fig1();
        let mut service = GpnmService::<SparseIndex>::new(f.graph);
        assert_eq!(
            service.register_pattern(PatternGraph::new(), MatchSemantics::Simulation),
            Err(ServiceError::EmptyPattern)
        );
    }

    #[test]
    fn handles_are_never_reissued() {
        let f = fig1();
        let mut service = GpnmService::<SparseIndex>::new(f.graph);
        let a = service
            .register_pattern(f.pattern.clone(), MatchSemantics::Simulation)
            .unwrap();
        service.deregister(a).unwrap();
        let b = service
            .register_pattern(f.pattern.clone(), MatchSemantics::DualSimulation)
            .unwrap();
        assert_ne!(a, b);
        assert!(service.result(a).is_err());
        assert!(service.result(b).is_ok());
    }
}
