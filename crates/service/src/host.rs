//! The unified session surface every GPNM host speaks: [`PatternHost`]
//! for the register/apply/read lifecycle, [`TickOutcome`] for what a tick
//! reported, and the shared [`HandleId`] every handle type wraps.
//!
//! `GpnmService` and `gpnm-cluster`'s `GpnmCluster` grew the same accessor
//! surface twice — `pattern`, `result`, `apply`, … copied per layer, which
//! any new feature (like the PR-6 read front-end) would have had to copy a
//! third time. These traits are that surface written once: tools like
//! `gpnm replay` and the concurrency stress harness are generic over
//! `PatternHost` instead of branching on "service or cluster".

use std::fmt;
use std::sync::Arc;

use gpnm_graph::{DataGraph, PatternGraph};
use gpnm_matcher::{MatchDelta, MatchResult, MatchSemantics};
use gpnm_updates::UpdateBatch;

use crate::read::{ReadFront, ReadView, Subscription};

/// The raw identity shared by every handle flavor
/// ([`crate::PatternHandle`], `gpnm-cluster`'s `ClusterHandle`): a
/// never-reissued `u64`, ascending in registration order, keying the
/// host's [`ReadFront`]. Handle types are newtypes over this so the
/// front-end, subscriptions and display formatting are written once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandleId(pub(crate) u64);

impl HandleId {
    /// An id from its raw number — for host implementations minting
    /// handles; application code receives handles from `register_pattern`.
    pub fn from_raw(raw: u64) -> HandleId {
        HandleId(raw)
    }

    /// The numeric id (stable, ascending in registration order).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for HandleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern #{}", self.0)
    }
}

/// What one tick reported, read uniformly: `GpnmService::apply`'s
/// `TickReport` and `GpnmCluster::apply`'s `ClusterTickReport` both
/// implement this, so per-tick consumers (delta printers, reconstruction
/// checks, stats dumps) are written once against the trait.
pub trait TickOutcome {
    /// The handle type the deltas are keyed by.
    type Handle: Copy + Eq + fmt::Display;

    /// 1-based tick number (batches applied so far).
    fn tick(&self) -> u64;

    /// Per-pattern deltas, in registration order.
    fn deltas(&self) -> &[(Self::Handle, MatchDelta)];

    /// One-line human summary.
    fn summary(&self) -> String;

    /// Multi-line rendering of the tick's fine-grained timing/counters
    /// (per-shard for a cluster report).
    fn render_stats(&self) -> String;

    /// The tick's stats as one self-contained JSON object (no trailing
    /// newline) — the `gpnm replay --stats-json` line format (one object
    /// per tick, newline-delimited = JSONL).
    ///
    /// This is the canonical schema description; the implementations
    /// mirror it exactly.
    ///
    /// Top-level fields (both hosts):
    ///
    /// * `tick` — 1-based tick number;
    /// * `ts_ms` — wall-clock unix milliseconds when the tick finished,
    ///   sampled from the telemetry clock;
    /// * `updates_submitted` / `updates_applied` — batch size before and
    ///   after net-effect reduction;
    /// * `slen_changes` — distance-index entries rewritten by commits;
    /// * `added` / `removed` — match pairs gained/lost across all
    ///   patterns ([`TickOutcome::total_added`]/[`TickOutcome::total_removed`]);
    /// * `total_ns` — end-to-end tick wall time in nanoseconds.
    ///
    /// A service report adds `stats`: one *stats object* (below). A
    /// cluster report instead adds `rebalanced` (array of
    /// `{handle, from, to, reclaimed_rows, added_rows}` placement moves)
    /// and `shards` (array of stats objects, shard order).
    ///
    /// Stats object fields: phase timings in integer nanoseconds
    /// (`reduce_ns`, `shared_repair_ns`, `detect_ns`, `refresh_total_ns`,
    /// `refresh_max_ns`, `publish_ns` — `publish_ns` is 0 on a
    /// non-publishing host); lane counts (`refresh_lanes`, `pool_lanes`);
    /// tick counters (`strategy_switches` cumulative, `eliminated`,
    /// `repair_calls`, `affected_nodes`); index gauges (`backend_kind`,
    /// `resident_rows`, `index_mem_bytes`); `per_pattern` — array of
    /// `{handle, refresh_ns, strategy}` in registration order; `io` —
    /// `{cache_hits, cache_misses, cache_evictions, pages_read,
    /// pages_written}` cumulative backend IO counters, or `null` on
    /// in-memory backends.
    fn stats_json(&self) -> String;

    /// The delta of one registered pattern, if it is part of this tick.
    fn delta_for(&self, handle: Self::Handle) -> Option<&MatchDelta> {
        self.deltas()
            .iter()
            .find(|(h, _)| *h == handle)
            .map(|(_, d)| d)
    }

    /// Match pairs gained across all patterns.
    fn total_added(&self) -> usize {
        self.deltas().iter().map(|(_, d)| d.added.len()).sum()
    }

    /// Match pairs lost across all patterns.
    fn total_removed(&self) -> usize {
        self.deltas().iter().map(|(_, d)| d.removed.len()).sum()
    }
}

/// A host of standing GPNM patterns over one evolving data graph: the
/// shared session API of `GpnmService` (one process, one backend) and
/// `GpnmCluster` (k sharded replicas).
///
/// The contract every implementation honors:
///
/// * handles are never reissued; a stale handle is a typed
///   `Self::Error`, never a panic;
/// * [`PatternHost::apply`] is the only mutation of standing results, and
///   each tick yields exactly one [`MatchDelta`] per registered pattern
///   with a monotone `result_version`;
/// * [`PatternHost::read_view`] / [`PatternHost::subscribe`] serve the
///   concurrent read front-end: readers on any thread (via
///   [`PatternHost::reader`]) always observe a fully-committed epoch.
pub trait PatternHost {
    /// Opaque per-pattern handle ([`crate::PatternHandle`] or
    /// `ClusterHandle`), convertible to the shared [`HandleId`].
    type Handle: Copy
        + Eq
        + std::hash::Hash
        + fmt::Debug
        + fmt::Display
        + Into<HandleId>
        + Send
        + Sync
        + 'static;
    /// The host's typed error ([`crate::ServiceError`] or `ClusterError`).
    type Error: std::error::Error + 'static;
    /// What [`PatternHost::apply`] reports.
    type Report: TickOutcome<Handle = Self::Handle>;

    /// The current data graph (shard 0's replica on a cluster — all
    /// replicas walk the same trajectory).
    fn graph(&self) -> &DataGraph;

    /// The registered pattern behind `handle`.
    fn pattern(&self, handle: Self::Handle) -> Result<&PatternGraph, Self::Error>;

    /// The semantics `handle` was registered under.
    fn semantics(&self, handle: Self::Handle) -> Result<MatchSemantics, Self::Error>;

    /// The full current result of `handle` — the snapshot for late
    /// joiners; deltas are the streaming answer.
    fn result(&self, handle: Self::Handle) -> Result<&MatchResult, Self::Error>;

    /// How many ticks `handle`'s result has absorbed since registration.
    fn result_version(&self, handle: Self::Handle) -> Result<u64, Self::Error>;

    /// Handles of every registered pattern, in registration order.
    fn handles(&self) -> Vec<Self::Handle>;

    /// Number of registered patterns.
    fn pattern_count(&self) -> usize;

    /// Batches applied so far.
    fn tick(&self) -> u64;

    /// Register a standing pattern and return the handle its deltas will
    /// be keyed by.
    fn register_pattern(
        &mut self,
        pattern: PatternGraph,
        semantics: MatchSemantics,
    ) -> Result<Self::Handle, Self::Error>;

    /// Deregister a standing pattern. Its subscriptions receive a final
    /// [`crate::SubEvent::Closed`]; its views stop being served.
    fn deregister(&mut self, handle: Self::Handle) -> Result<(), Self::Error>;

    /// Apply one data-update batch — once — and refresh every registered
    /// pattern.
    fn apply(&mut self, batch: &UpdateBatch) -> Result<Self::Report, Self::Error>;

    /// The last published snapshot of `handle` — lock-free, safe to call
    /// from any thread holding [`PatternHost::reader`].
    fn read_view(&self, handle: Self::Handle) -> Result<Arc<ReadView>, Self::Error>;

    /// Subscribe to `handle`'s per-tick delta stream (default bounded
    /// capacity — see [`crate::DEFAULT_SUBSCRIPTION_CAPACITY`]).
    fn subscribe(&self, handle: Self::Handle) -> Result<Subscription, Self::Error>;

    /// A cloneable, `Send + Sync` handle onto this host's read front-end
    /// for reader threads: views and subscriptions survive there while
    /// `&mut self` ticks proceed here.
    fn reader(&self) -> ReadFront;

    /// Admission control under load: coalesce a backlog of batches into
    /// **one** tick. The merged batch rides the tick's existing net-effect
    /// reduction, so an insert queued behind its own deletion cancels
    /// before any repair work is planned — k queued batches cost one
    /// shared repair pass, not k.
    fn apply_coalesced(&mut self, batches: &[UpdateBatch]) -> Result<Self::Report, Self::Error> {
        let mut merged = UpdateBatch::new();
        for batch in batches {
            for update in batch.updates() {
                merged.push(*update);
            }
        }
        self.apply(&merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_id_displays_like_handles_always_did() {
        let id = HandleId(7);
        assert_eq!(id.to_string(), "pattern #7");
        assert_eq!(id.raw(), 7);
        assert!(HandleId(1) < HandleId(2));
    }
}
