//! The concurrent read front-end: epoch-swapped published snapshots
//! ([`ReadView`]) and bounded match-delta subscriptions ([`Subscription`]).
//!
//! A tick owns its host exclusively (`&mut self`), but serving readers
//! must not: the ROADMAP's "millions of readers" story needs a read path
//! that takes **no lock** while ticks run. The front-end is the classic
//! decoupled reader/writer shape — the writer prepares the next epoch off
//! to the side and *publishes* it with one atomic swap per pattern after
//! commit, so a reader can only ever observe a fully-committed epoch:
//!
//! * every pattern has a [`PublishCell`]: an atomic epoch counter plus two
//!   slots holding `Arc<ReadView>`. The epoch's low bit names the live
//!   slot; the writer only ever touches the *spare* slot, then advances
//!   the epoch (release), making the swap the linearization point;
//! * readers load the epoch (acquire), `try_read` the live slot and clone
//!   the `Arc` out — the `try_read` can only fail if the writer published
//!   *twice* in the reader's tiny window, in which case the reader
//!   reloads the epoch and wins on the other slot. No reader ever blocks
//!   a tick; a tick never blocks a reader;
//! * subscriptions ride the same publication: after the views of a tick
//!   are swapped in, the tick's [`MatchDelta`]s fan out to per-subscriber
//!   bounded queues. A slow consumer is never buffered without bound —
//!   once its queue is full, everything it missed is folded (via
//!   [`MatchDelta::compose`]) into **one** coalesced
//!   [`SubEvent::Lagged`] catch-up delta.
//!
//! The [`ReadFront`] is the shared, cloneable bundle of all of this:
//! hosts hand it out via `reader()`, reader threads keep their clone —
//! and their views and subscriptions — while `&mut self` ticks proceed
//! on the host.

use gpnm_sync::atomic::{AtomicU64, Ordering};
use gpnm_sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, TryLockError};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::Duration;

use gpnm_matcher::{MatchDelta, MatchResult};

use crate::host::HandleId;

/// Default bounded capacity of a subscription's pending-delta queue —
/// the backlog a consumer may accumulate before the stream degrades to a
/// coalesced [`SubEvent::Lagged`] catch-up instead of buffering without
/// bound. Override per subscription with
/// [`ReadFront::subscribe_with_capacity`].
pub const DEFAULT_SUBSCRIPTION_CAPACITY: usize = 64;

/// One pattern's published snapshot: the full result as of a committed
/// tick, immutable behind an `Arc`. This is what every concurrent reader
/// sees — the writer never mutates a published view, it publishes a new
/// one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadView {
    /// The full match table at `result_version`.
    pub result: MatchResult,
    /// How many ticks this pattern's result has absorbed — the version
    /// [`MatchDelta::result_version`] counts against.
    pub result_version: u64,
    /// The host tick at which this view was published.
    pub tick: u64,
}

/// Typed error of the standalone read path: the handle was never
/// published here, or has been closed by deregistration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadError {
    /// No live published state for this handle.
    UnknownHandle(HandleId),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::UnknownHandle(id) => {
                write!(f, "no published state for {id} (unknown or deregistered)")
            }
        }
    }
}

impl std::error::Error for ReadError {}

/// What a [`Subscription`] yields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubEvent {
    /// One tick's delta, in order, gap-free.
    Delta(MatchDelta),
    /// The consumer fell behind its bounded queue: every missed tick has
    /// been folded into one catch-up delta via [`MatchDelta::compose`],
    /// stamped with the newest missed `result_version`. Applying it
    /// advances the consumer as if it had applied each missed delta
    /// in order.
    Lagged {
        /// How many per-tick deltas were coalesced into `delta`.
        missed_versions: u64,
        /// The composition of every missed delta.
        delta: MatchDelta,
    },
    /// The pattern was deregistered (or its host dropped). Always the
    /// final event; any deltas published before the close are still
    /// delivered first.
    Closed,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A reader panicking mid-`recv` must not wedge the writer (or other
    // clones of the front): recover the guard and keep serving.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

// Publish-path counters. Compiled out under loom: `publish_tick` runs
// inside `loom::model` closures (see `tests/loom_read_front.rs`), and the
// global registry's lazily-initialised statics must not be touched there —
// loom state may not leak across model iterations.
#[cfg(not(gpnm_loom))]
mod read_metrics {
    pub fn tick_published(views: u64, deltas_offered: u64, newly_lagged: u64) {
        let reg = gpnm_telemetry::global();
        reg.counter("gpnm_read_views_published_total").add(views);
        reg.counter("gpnm_read_deltas_fanned_total")
            .add(deltas_offered);
        reg.counter("gpnm_read_sub_lagged_total").add(newly_lagged);
    }
}
#[cfg(gpnm_loom)]
mod read_metrics {
    pub fn tick_published(_views: u64, _deltas_offered: u64, _newly_lagged: u64) {}
}

/// Consumer-side queue state. `pending` and `lagged` are mutually
/// exclusive: overflow drains the whole queue into the coalesced record,
/// and further publishes fold into it until the consumer drains it.
struct SubState {
    pending: VecDeque<MatchDelta>,
    lagged: Option<(u64, MatchDelta)>,
    closed: bool,
}

struct SubShared {
    state: Mutex<SubState>,
    ready: Condvar,
    capacity: usize,
}

impl SubShared {
    fn new(capacity: usize) -> Self {
        SubShared {
            state: Mutex::new(SubState {
                pending: VecDeque::new(),
                lagged: None,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Writer side: enqueue one published delta, degrading to the
    /// coalesced lagged record instead of growing past `capacity`.
    /// Returns whether this offer *newly* degraded the stream (the
    /// full-queue → lagged transition; folds into an existing lagged
    /// record return `false`).
    fn offer(&self, delta: &MatchDelta) -> bool {
        let mut st = lock(&self.state);
        if st.closed {
            return false;
        }
        let mut newly_lagged = false;
        if let Some((missed, acc)) = st.lagged.take() {
            st.lagged = Some((missed + 1, acc.compose(delta)));
        } else if st.pending.len() >= self.capacity {
            let mut missed = 1u64; // the delta that did not fit
            let mut acc = delta.clone();
            // Compose right-to-left so each step is older ∘ newer.
            while let Some(d) = st.pending.pop_back() {
                missed += 1;
                acc = d.compose(&acc);
            }
            st.lagged = Some((missed, acc));
            newly_lagged = true;
        } else {
            st.pending.push_back(delta.clone());
        }
        drop(st);
        self.ready.notify_all();
        newly_lagged
    }

    fn close(&self) {
        lock(&self.state).closed = true;
        self.ready.notify_all();
    }

    fn pop(st: &mut SubState) -> Option<SubEvent> {
        if let Some((missed_versions, delta)) = st.lagged.take() {
            return Some(SubEvent::Lagged {
                missed_versions,
                delta,
            });
        }
        if let Some(delta) = st.pending.pop_front() {
            return Some(SubEvent::Delta(delta));
        }
        if st.closed {
            return Some(SubEvent::Closed);
        }
        None
    }
}

/// An ordered, gap-free stream of one pattern's per-tick deltas.
///
/// Events arrive in `result_version` order with no version skipped:
/// either each tick is its own [`SubEvent::Delta`], or — if the consumer
/// fell behind its bounded queue — the missed ticks arrive folded into
/// one [`SubEvent::Lagged`] whose delta spans them all. Folding the
/// stream with [`MatchDelta::apply_to`] over a base
/// [`ReadView`] therefore reconstructs the live result exactly; apply
/// every event whose `result_version` exceeds the base's
/// `result_version` (a delta at or below it is already contained in the
/// base snapshot).
///
/// Dropping the subscription unsubscribes: the writer prunes it at the
/// next publication.
#[derive(Debug)]
pub struct Subscription {
    id: HandleId,
    shared: Arc<SubShared>,
}

impl fmt::Debug for SubShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubShared")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl Subscription {
    /// The handle this subscription streams.
    pub fn handle_id(&self) -> HandleId {
        self.id
    }

    /// Next event, blocking until one is available. Returns
    /// [`SubEvent::Closed`] exactly once at end of stream; calling again
    /// after that keeps returning `Closed`.
    pub fn recv(&self) -> SubEvent {
        let mut st = lock(&self.shared.state);
        loop {
            if let Some(event) = SubShared::pop(&mut st) {
                return event;
            }
            st = self
                .shared
                .ready
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Next event if one is ready, without blocking.
    pub fn try_recv(&self) -> Option<SubEvent> {
        SubShared::pop(&mut lock(&self.shared.state))
    }

    /// Next event, waiting at most `timeout`. `None` means the wait
    /// timed out with no event ready.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<SubEvent> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = lock(&self.shared.state);
        loop {
            if let Some(event) = SubShared::pop(&mut st) {
                return Some(event);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .shared
                .ready
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
        }
    }
}

/// The double-buffered epoch cell behind one handle's published view.
///
/// The low bit of `epoch` names the live slot. The single writer (a
/// host's `&mut self` tick) writes the *spare* slot, drops its lock, and
/// advances the epoch with release ordering — publication is that one
/// atomic store. A reader acquires the epoch, `try_read`s the live slot
/// and clones the `Arc` out; the only way `try_read` can fail is a
/// writer locking that slot for the *next* publication (i.e. two full
/// publications raced past the reader), and retrying reloads the epoch,
/// which now names the other slot. Readers therefore never wait on a
/// lock the writer holds for more than the slot-store instant, and never
/// observe a half-written view: the swapped `Arc` was fully built before
/// the release store.
struct PublishCell {
    epoch: AtomicU64,
    slots: [RwLock<Arc<ReadView>>; 2],
}

impl PublishCell {
    fn new(initial: Arc<ReadView>) -> Self {
        PublishCell {
            epoch: AtomicU64::new(0),
            slots: [RwLock::new(Arc::clone(&initial)), RwLock::new(initial)],
        }
    }

    fn load(&self) -> Arc<ReadView> {
        loop {
            let e = self.epoch.load(Ordering::Acquire);
            let view = match self.slots[(e & 1) as usize].try_read() {
                Ok(guard) => Arc::clone(&guard),
                Err(TryLockError::Poisoned(poisoned)) => {
                    // The stored Arc is always whole (a clone of a fully
                    // built view), so a reader panic cannot have torn it.
                    Arc::clone(&poisoned.into_inner())
                }
                Err(TryLockError::WouldBlock) => {
                    gpnm_sync::hint::spin_loop();
                    continue;
                }
            };
            // Seqlock-style re-check: a reader that stalls between the
            // epoch load and the slot read can otherwise return the
            // *in-flight* view early — the writer refills slot `e & 1`
            // as the spare of epoch `e + 1` before publishing it — and a
            // later read would then rewind to the previous version. The
            // slot content is only rewritten after the epoch moves on, so
            // an unchanged epoch proves `view` was current for the whole
            // read (found by the loom model in `loom_read_front.rs`).
            if self.epoch.load(Ordering::Acquire) == e {
                return view;
            }
        }
    }

    /// Single-writer only — hosts serialize publication behind
    /// `&mut self`.
    fn publish(&self, view: Arc<ReadView>) {
        // RELAXED: single-writer — only `publish` stores `epoch`, so the
        // writer reads back its own last store; readers use `Acquire`.
        let e = self.epoch.load(Ordering::Relaxed);
        {
            let mut spare = self.slots[((e + 1) & 1) as usize]
                .write()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *spare = view;
        }
        self.epoch.store(e.wrapping_add(1), Ordering::Release);
    }
}

struct Entry {
    cell: PublishCell,
    subs: Mutex<Vec<Arc<SubShared>>>,
}

#[derive(Default)]
struct FrontInner {
    entries: RwLock<HashMap<u64, Arc<Entry>>>,
}

impl FrontInner {
    fn entry(&self, id: HandleId) -> Result<Arc<Entry>, ReadError> {
        self.entries
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(&id.raw())
            .cloned()
            .ok_or(ReadError::UnknownHandle(id))
    }
}

/// The shared read front-end of one host: published [`ReadView`]s and
/// delta [`Subscription`]s for every registered pattern, usable from any
/// thread while the host ticks.
///
/// Obtained from a host's `reader()` (or the [`crate::PatternHost`]
/// method of the same name); cloning is cheap (`Arc`) and every clone
/// observes the same publications. The read path
/// ([`ReadFront::read_view`]) takes no lock the writer ever holds across
/// a tick — each pattern's view sits in an epoch-swapped double buffer —
/// so any number of readers may spin on it concurrently with `apply`.
///
/// The `publish*`/`close` methods are the **host side** of the contract;
/// application code only reads.
#[derive(Debug, Clone, Default)]
pub struct ReadFront {
    inner: Arc<FrontInner>,
}

impl fmt::Debug for FrontInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrontInner").finish_non_exhaustive()
    }
}

impl ReadFront {
    /// An empty front with nothing published.
    pub fn new() -> Self {
        Self::default()
    }

    /// The last published snapshot of `handle` — lock-free against
    /// concurrent publication; always a fully-committed epoch.
    pub fn read_view(&self, handle: impl Into<HandleId>) -> Result<Arc<ReadView>, ReadError> {
        Ok(self.inner.entry(handle.into())?.cell.load())
    }

    /// A reader pinned to one handle: skips the per-call handle lookup,
    /// leaving only the epoch load on the hot path. The benchmark's (and
    /// a tight reader loop's) entry point.
    pub fn pinned(&self, handle: impl Into<HandleId>) -> Result<PinnedReader, ReadError> {
        Ok(PinnedReader {
            entry: self.inner.entry(handle.into())?,
        })
    }

    /// Subscribe to `handle`'s delta stream with the
    /// [default backlog](DEFAULT_SUBSCRIPTION_CAPACITY).
    pub fn subscribe(&self, handle: impl Into<HandleId>) -> Result<Subscription, ReadError> {
        self.subscribe_with_capacity(handle, DEFAULT_SUBSCRIPTION_CAPACITY)
    }

    /// Subscribe with an explicit pending-queue capacity (`≥ 1`); a
    /// consumer lagging past it receives a coalesced
    /// [`SubEvent::Lagged`] instead of unbounded buffering.
    pub fn subscribe_with_capacity(
        &self,
        handle: impl Into<HandleId>,
        capacity: usize,
    ) -> Result<Subscription, ReadError> {
        let id = handle.into();
        let entry = self.inner.entry(id)?;
        let shared = Arc::new(SubShared::new(capacity));
        lock(&entry.subs).push(Arc::clone(&shared));
        Ok(Subscription { id, shared })
    }

    /// Host side: publish `view` as `handle`'s live snapshot, creating
    /// the handle's cell on first publication (registration). No delta
    /// fan-out — tick publication goes through
    /// [`ReadFront::publish_tick`].
    pub fn publish(&self, handle: impl Into<HandleId>, view: ReadView) {
        let id = handle.into();
        let view = Arc::new(view);
        if let Ok(entry) = self.inner.entry(id) {
            entry.cell.publish(view);
            return;
        }
        let mut entries = self
            .inner
            .entries
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        entries.insert(
            id.raw(),
            Arc::new(Entry {
                cell: PublishCell::new(view),
                subs: Mutex::new(Vec::new()),
            }),
        );
    }

    /// Host side: publish one committed tick. **All** views are swapped
    /// in before **any** delta fans out, so by the time a subscriber
    /// wakes, `read_view` already serves a snapshot at least as new as
    /// the event — a late joiner can take a view as its base and apply
    /// exactly the events with `result_version` beyond it. Dropped
    /// subscribers are pruned here.
    pub fn publish_tick(&self, items: impl IntoIterator<Item = (HandleId, ReadView, MatchDelta)>) {
        let mut fanout = Vec::new();
        for (id, view, delta) in items {
            self.publish(id, view);
            if let Ok(entry) = self.inner.entry(id) {
                fanout.push((entry, delta));
            }
        }
        let views = fanout.len() as u64;
        let mut offered = 0u64;
        let mut newly_lagged = 0u64;
        for (entry, delta) in fanout {
            let mut subs = lock(&entry.subs);
            subs.retain(|sub| Arc::strong_count(sub) > 1);
            for sub in subs.iter() {
                offered += 1;
                if sub.offer(&delta) {
                    newly_lagged += 1;
                }
            }
        }
        read_metrics::tick_published(views, offered, newly_lagged);
    }

    /// Deliberately *broken* variant of [`ReadFront::publish_tick`] that
    /// fans each delta out **before** swapping the view in — the exact
    /// ordering bug the publish-all-views-before-any-fan-out invariant
    /// forbids (a woken subscriber could observe a `read_view` older than
    /// the delta it was just handed). Compiled only for the loom model
    /// suite, where `loom_read_front.rs` proves the checker catches it.
    #[cfg(gpnm_loom)]
    #[doc(hidden)]
    pub fn publish_tick_fanout_first(
        &self,
        items: impl IntoIterator<Item = (HandleId, ReadView, MatchDelta)>,
    ) {
        for (id, view, delta) in items {
            if let Ok(entry) = self.inner.entry(id) {
                let mut subs = lock(&entry.subs);
                subs.retain(|sub| Arc::strong_count(sub) > 1);
                for sub in subs.iter() {
                    sub.offer(&delta);
                }
            }
            self.publish(id, view);
        }
    }

    /// Host side: stop serving `handle` (deregistration). Live
    /// subscriptions receive their queued deltas, then a final
    /// [`SubEvent::Closed`]; subsequent `read_view`/`subscribe` calls
    /// get [`ReadError::UnknownHandle`]. Pinned readers created earlier
    /// keep serving the last published view.
    pub fn close(&self, handle: impl Into<HandleId>) {
        let id = handle.into();
        let removed = self
            .inner
            .entries
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .remove(&id.raw());
        if let Some(entry) = removed {
            for sub in lock(&entry.subs).drain(..) {
                sub.close();
            }
        }
    }

    /// Handle ids with a live published view, ascending.
    pub fn published_ids(&self) -> Vec<HandleId> {
        let mut ids: Vec<HandleId> = self
            .inner
            .entries
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .keys()
            .map(|&raw| HandleId(raw))
            .collect();
        ids.sort_unstable();
        ids
    }
}

/// A handle-pinned reader: [`PinnedReader::view`] is the minimal hot
/// path — one atomic load, one `try_read` of an uncontended slot, one
/// `Arc` clone. Survives deregistration (keeps serving the last
/// published view); take a fresh one from [`ReadFront::pinned`] to
/// observe re-registration.
#[derive(Debug, Clone)]
pub struct PinnedReader {
    entry: Arc<Entry>,
}

impl fmt::Debug for Entry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Entry").finish_non_exhaustive()
    }
}

impl PinnedReader {
    /// The last published snapshot — infallible: the pinned entry is
    /// kept alive by this reader even across deregistration.
    pub fn view(&self) -> Arc<ReadView> {
        self.entry.cell.load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpnm_graph::{LabelInterner, NodeId, PatternGraph, PatternNodeId};

    fn pattern1() -> PatternGraph {
        let mut li = LabelInterner::new();
        let a = li.intern("A");
        let mut p = PatternGraph::new();
        p.add_node(a);
        p
    }

    fn view_with(nodes: &[u32], version: u64) -> ReadView {
        let mut result = MatchResult::for_pattern(&pattern1());
        for &n in nodes {
            result.set_mut(PatternNodeId(0)).insert(NodeId(n));
        }
        ReadView {
            result,
            result_version: version,
            tick: version,
        }
    }

    fn delta_between(prev: &ReadView, next: &ReadView) -> MatchDelta {
        next.result.delta_from(&prev.result, next.result_version)
    }

    #[test]
    fn read_view_tracks_publications() {
        let front = ReadFront::new();
        let id = HandleId(0);
        assert_eq!(front.read_view(id), Err(ReadError::UnknownHandle(id)));
        front.publish(id, view_with(&[1], 0));
        assert_eq!(front.read_view(id).unwrap().result_version, 0);
        front.publish(id, view_with(&[1, 2], 1));
        let v = front.read_view(id).unwrap();
        assert_eq!(v.result_version, 1);
        assert_eq!(v.result.total_matches(), 2);
        assert_eq!(front.published_ids(), vec![id]);
        // Clones observe the same publications.
        let clone = front.clone();
        assert_eq!(clone.read_view(id).unwrap().result_version, 1);
    }

    #[test]
    fn pinned_reader_survives_close() {
        let front = ReadFront::new();
        let id = HandleId(3);
        front.publish(id, view_with(&[7], 0));
        let pinned = front.pinned(id).unwrap();
        front.close(id);
        assert_eq!(front.read_view(id), Err(ReadError::UnknownHandle(id)));
        assert!(front.pinned(id).is_err());
        assert_eq!(pinned.view().result_version, 0, "last view still served");
    }

    #[test]
    fn subscription_streams_in_order_then_closes() {
        let front = ReadFront::new();
        let id = HandleId(0);
        let v0 = view_with(&[1], 0);
        front.publish(id, v0.clone());
        let sub = front.subscribe(id).unwrap();
        assert_eq!(sub.handle_id(), id);
        assert_eq!(sub.try_recv(), None);

        let v1 = view_with(&[1, 2], 1);
        let v2 = view_with(&[2], 2);
        front.publish_tick(vec![(id, v1.clone(), delta_between(&v0, &v1))]);
        front.publish_tick(vec![(id, v2.clone(), delta_between(&v1, &v2))]);
        front.close(id);

        let SubEvent::Delta(d1) = sub.recv() else {
            panic!("first event is a delta")
        };
        assert_eq!(d1.result_version, 1);
        let SubEvent::Delta(d2) = sub.recv() else {
            panic!("second event is a delta")
        };
        assert_eq!(d2.result_version, 2);
        assert_eq!(sub.recv(), SubEvent::Closed);
        assert_eq!(sub.recv(), SubEvent::Closed, "closed is sticky");

        // The stream reconstructs the final result from the base view.
        let rebuilt = d2.apply_to(&d1.apply_to(&v0.result));
        assert_eq!(rebuilt, v2.result);
    }

    #[test]
    fn slow_consumer_gets_one_coalesced_lagged_event() {
        let front = ReadFront::new();
        let id = HandleId(0);
        let mut views = vec![view_with(&[1], 0)];
        front.publish(id, views[0].clone());
        let sub = front.subscribe_with_capacity(id, 2).unwrap();

        // Publish 5 ticks without the consumer draining: tick 3
        // overflows the capacity-2 queue.
        for v in 1..=5u64 {
            let nodes: Vec<u32> = (0..=v as u32).collect();
            let next = view_with(&nodes, v);
            let delta = delta_between(views.last().unwrap(), &next);
            front.publish_tick(vec![(id, next.clone(), delta)]);
            views.push(next);
        }

        // Overflow folds the *whole* backlog into one catch-up event —
        // the queued-but-undelivered ticks included — so ordered
        // delivery survives (the coalesced delta is always the newest
        // thing the consumer sees next).
        let SubEvent::Lagged {
            missed_versions,
            delta,
        } = sub.recv()
        else {
            panic!("overflow coalesces")
        };
        assert_eq!(missed_versions, 5, "all five ticks folded into one");
        assert_eq!(delta.result_version, 5, "stamped with the newest version");
        assert_eq!(sub.try_recv(), None, "queue drained");

        // Gap-free: the single catch-up delta reconstructs tick 5.
        let rebuilt = delta.apply_to(&views[0].result);
        assert_eq!(rebuilt, views[5].result);
    }

    #[test]
    fn lagged_keeps_folding_until_drained() {
        let front = ReadFront::new();
        let id = HandleId(0);
        let mut prev = view_with(&[1], 0);
        front.publish(id, prev.clone());
        let base = prev.clone();
        let sub = front.subscribe_with_capacity(id, 1).unwrap();
        for v in 1..=4u64 {
            let next = view_with(&[v as u32, v as u32 + 1], v);
            let delta = delta_between(&prev, &next);
            front.publish_tick(vec![(id, next.clone(), delta)]);
            prev = next;
        }
        let SubEvent::Lagged {
            missed_versions,
            delta,
        } = sub.recv()
        else {
            panic!("ticks 1..=4 coalesce")
        };
        assert_eq!(missed_versions, 4);
        assert_eq!(delta.result_version, 4);
        let rebuilt = delta.apply_to(&base.result);
        assert_eq!(rebuilt, prev.result);
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let front = ReadFront::new();
        let id = HandleId(0);
        let v0 = view_with(&[1], 0);
        front.publish(id, v0.clone());
        let keep = front.subscribe(id).unwrap();
        let dropped = front.subscribe(id).unwrap();
        drop(dropped);
        let v1 = view_with(&[2], 1);
        front.publish_tick(vec![(id, v1.clone(), delta_between(&v0, &v1))]);
        let entry = front.inner.entry(id).unwrap();
        assert_eq!(lock(&entry.subs).len(), 1, "dropped subscriber pruned");
        assert!(matches!(keep.recv(), SubEvent::Delta(_)));
    }

    #[test]
    fn recv_timeout_times_out_empty_and_delivers_ready() {
        let front = ReadFront::new();
        let id = HandleId(0);
        let v0 = view_with(&[1], 0);
        front.publish(id, v0.clone());
        let sub = front.subscribe(id).unwrap();
        assert_eq!(sub.recv_timeout(Duration::from_millis(10)), None);
        let v1 = view_with(&[2], 1);
        front.publish_tick(vec![(id, v1.clone(), delta_between(&v0, &v1))]);
        assert!(matches!(
            sub.recv_timeout(Duration::from_millis(100)),
            Some(SubEvent::Delta(_))
        ));
    }

    #[test]
    fn concurrent_readers_only_see_committed_epochs() {
        let front = ReadFront::new();
        let id = HandleId(0);
        front.publish(id, view_with(&[0], 0));
        let committed: Vec<ReadView> = (0..200u64)
            .map(|v| view_with(&[v as u32 % 7, (v as u32 % 5) + 10], v))
            .collect();
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let pinned = front.pinned(id).unwrap();
                let stop = Arc::clone(&stop);
                let committed = committed.clone();
                gpnm_sync::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut observations = 0u64;
                    loop {
                        let v = pinned.view();
                        // Monotone, and bitwise one of the committed views.
                        assert!(v.result_version >= last, "versions never rewind");
                        last = v.result_version;
                        if v.result_version > 0 {
                            let expected = &committed[v.result_version as usize];
                            assert_eq!(v.result, expected.result, "never torn");
                        }
                        observations += 1;
                        // Check *after* observing, so even a reader that
                        // lost the whole race to the writer verifies the
                        // final epoch at least once.
                        // RELAXED: test shutdown flag; no data published
                        // through it.
                        if stop.load(Ordering::Relaxed) != 0 {
                            return observations;
                        }
                    }
                })
            })
            .collect();
        for v in committed.iter().skip(1) {
            front.publish(id, v.clone());
        }
        // RELAXED: see the reader side above.
        stop.store(1, Ordering::Relaxed);
        for reader in readers {
            assert!(reader.join().expect("no reader panicked") > 0);
        }
        assert_eq!(front.read_view(id).unwrap().result_version, 199);
    }
}
