//! Typed errors for every fallible service entry point.

use std::fmt;

use gpnm_engine::EngineError;
use gpnm_graph::GraphError;

use crate::PatternHandle;

/// Why a [`crate::GpnmService`] operation was refused.
///
/// Every failure surfaces *before* any state mutates: a rejected batch
/// leaves the graph, the backend and every registered pattern's result
/// exactly as they were, and the service stays usable.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A data update in the batch is invalid against the current graph
    /// (duplicate edge, missing node, self-loop, …).
    InvalidBatch(GraphError),
    /// The batch contains a pattern update at this position. A service
    /// hosts *many* patterns, so a bare pattern update is ambiguous —
    /// re-register the changed pattern (or run a single-pattern
    /// [`gpnm_engine::GpnmEngine`]) instead.
    PatternUpdateInBatch {
        /// Index of the offending update within the batch.
        index: usize,
    },
    /// No pattern is registered under this handle (never issued, or
    /// already deregistered).
    UnknownHandle(PatternHandle),
    /// The pattern has no nodes: a standing query that can never match
    /// anything is almost certainly a caller bug.
    EmptyPattern,
    /// A dense backend's `n × n` matrix for this graph would exceed the
    /// configured memory budget. Use the sparse backend, or raise the
    /// budget if the RAM is really there.
    IndexTooLarge {
        /// Node slots in the graph.
        nodes: usize,
        /// Estimated matrix footprint.
        estimated_bytes: u128,
        /// The configured ceiling.
        limit_bytes: u128,
    },
    /// A builder knob was given a nonsensical value.
    InvalidConfig(String),
    /// `read_view`/`subscribe` on a service whose read front-end is
    /// turned off ([`crate::ServiceBuilder::publishing`]`(false)`) —
    /// e.g. a cluster's shard replica, whose published state lives on
    /// the cluster so per-tick publication stays atomic across shards.
    ReadFrontDisabled,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::InvalidBatch(e) => write!(f, "invalid update batch: {e}"),
            ServiceError::PatternUpdateInBatch { index } => write!(
                f,
                "update #{index} is a pattern update; a multi-pattern service takes \
                 data-only batches — re-register the changed pattern instead"
            ),
            ServiceError::UnknownHandle(h) => write!(f, "no pattern registered under {h}"),
            ServiceError::EmptyPattern => write!(f, "refusing to register an empty pattern"),
            ServiceError::IndexTooLarge {
                nodes,
                estimated_bytes,
                limit_bytes,
            } => write!(
                f,
                "dense SLen matrix for {nodes} nodes ≈ {:.1} GiB exceeds the {:.1} GiB budget; \
                 use BackendKind::Sparse or raise max_index_gb",
                *estimated_bytes as f64 / (1u64 << 30) as f64,
                *limit_bytes as f64 / (1u64 << 30) as f64,
            ),
            ServiceError::InvalidConfig(msg) => write!(f, "invalid service configuration: {msg}"),
            ServiceError::ReadFrontDisabled => write!(
                f,
                "this service does not publish a read front-end (built with \
                 publishing(false)); read through its owning cluster instead"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::InvalidBatch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ServiceError {
    fn from(e: GraphError) -> Self {
        ServiceError::InvalidBatch(e)
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::InvalidBatch(g) => ServiceError::InvalidBatch(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpnm_graph::NodeId;

    #[test]
    fn displays_are_actionable() {
        let e = ServiceError::PatternUpdateInBatch { index: 3 };
        assert!(e.to_string().contains("#3"));
        let e = ServiceError::IndexTooLarge {
            nodes: 100_000,
            estimated_bytes: 40_000_000_000,
            limit_bytes: 4 << 30,
        };
        assert!(e.to_string().contains("Sparse"));
        let e: ServiceError = GraphError::MissingNode(NodeId(1)).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
