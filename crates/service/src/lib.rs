//! # gpnm-service — continuous GPNM queries over one evolving graph
//!
//! The paper's premise is that updates arrive continuously and re-matching
//! from scratch is wasteful. A serving deployment takes that one step
//! further: *many* standing patterns watch *one* evolving data graph, and
//! each subscriber wants to be told **what changed**, not handed a full
//! result table per tick. Running one [`gpnm_engine::GpnmEngine`] per
//! pattern answers the question but repairs the same `SLen` index k times
//! per batch; [`GpnmService`] is the incremental-view-maintenance shape
//! instead:
//!
//! * **one** data graph + **one** [`SlenBackend`](gpnm_distance::SlenBackend)
//!   covering the *union* of every registered pattern's requirements
//!   (widened on [`GpnmService::register_pattern`], narrowed on
//!   [`GpnmService::deregister`]);
//! * [`GpnmService::apply`] validates and commits a data-update batch
//!   **once** — one shared repair pass over the backend — then refreshes
//!   each registered pattern through its own elimination/affected pipeline
//!   (the engine's own steps, re-exported via [`gpnm_engine::pipeline`]);
//! * every tick returns one [`MatchDelta`](gpnm_matcher::MatchDelta) per
//!   [`PatternHandle`]: added/removed `(pattern node, data node)` pairs and
//!   a monotone `result_version`, with the full snapshot still available
//!   from [`GpnmService::result`] for late joiners.
//!
//! Per-pattern results are bitwise identical to k independent engines
//! (asserted by the `service_equivalence` proptest suite, all backends ×
//! both semantics); the shared pass just stops paying the `SLen` repair k
//! times — the `micro_service` bench tracks the resulting speedup.
//!
//! ## Worked example: two standing queries, streamed updates
//!
//! ```
//! use gpnm_distance::BackendKind;
//! use gpnm_graph::PatternGraphBuilder;
//! use gpnm_matcher::MatchSemantics;
//! use gpnm_service::{GpnmService, ServiceError, TickOutcome};
//! use gpnm_updates::{DataUpdate, UpdateBatch};
//!
//! // The paper's Figure 1 data graph: PMs, SEs, a DB admin, test engineers.
//! let fig = gpnm_graph::paper::fig1();
//!
//! // Fallible, builder-style construction replaces the `new_*` zoo.
//! let mut service = GpnmService::builder()
//!     .backend(BackendKind::Sparse)
//!     .max_index_gb(4)
//!     .build(fig.graph)?;
//!
//! // Standing query 1: the paper's pattern, as registered.
//! let staffing = service.register_pattern(fig.pattern.clone(), MatchSemantics::Simulation)?;
//!
//! // Standing query 2: a PM within 2 hops of a TE, on the same service.
//! let (oversight, _, _) = PatternGraphBuilder::new()
//!     .node("pm", "PM")
//!     .node("te", "TE")
//!     .edge("pm", "te", 2)
//!     .build_with_interner(fig.interner.clone())
//!     .unwrap();
//! let oversight = service.register_pattern(oversight, MatchSemantics::Simulation)?;
//!
//! // A tick: one data batch, applied once, answered per pattern.
//! let before = service.result(staffing)?.clone();
//! let mut batch = UpdateBatch::new();
//! batch.push(DataUpdate::InsertEdge { from: fig.se1, to: fig.te2 });
//! let report = service.apply(&batch)?;
//!
//! assert_eq!(report.tick, 1);
//! assert_eq!(report.deltas.len(), 2, "one delta per standing query");
//! assert_eq!(report.delta_for(oversight).expect("registered").result_version, 1);
//! // Deltas reconstruct the snapshot: added ∪ (prev ∖ removed).
//! let delta = report.delta_for(staffing).unwrap();
//! assert_eq!(&delta.apply_to(&before), service.result(staffing)?);
//! # Ok::<(), ServiceError>(())
//! ```
//!
//! The `gpnm replay` subcommand drives the same API from the command line
//! (k generated patterns, streamed batches, per-tick delta lines), and
//! `examples/continuous_queries.rs` shows the subscriber's view.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod host;
mod read;
mod service;

pub use error::ServiceError;
pub use host::{HandleId, PatternHost, TickOutcome};
pub use read::{
    PinnedReader, ReadError, ReadFront, ReadView, SubEvent, Subscription,
    DEFAULT_SUBSCRIPTION_CAPACITY,
};
pub use service::{GpnmService, PatternHandle, ServiceBuilder, TickReport, TickStats};
