//! Streaming sessions: many small update batches arriving between
//! queries — the Facebook-scale motivation of §I-B ("within each minute,
//! 400 new users join...").
//!
//! Chains ten subsequent queries on one engine, alternating strategies,
//! and verifies after every round that the incremental result matches a
//! from-scratch recomputation.
//!
//! Run with: `cargo run --release --example streaming_updates`

use ua_gpnm::prelude::*;
use ua_gpnm::workload::{
    generate_batch, generate_pattern, generate_social_graph, PatternConfig, SocialGraphConfig,
    UpdateProtocol,
};

fn main() {
    let (graph, interner) = generate_social_graph(&SocialGraphConfig {
        nodes: 500,
        edges: 3_000,
        labels: 10,
        communities: 10,
        seed: 7,
        ..Default::default()
    });
    let pattern = generate_pattern(
        &PatternConfig {
            nodes: 6,
            edges: 6,
            bound_range: (1, 3),
            seed: 21,
        },
        &interner,
    );

    let mut engine = GpnmEngine::new(graph, pattern, MatchSemantics::Simulation);
    engine.initial_query();
    engine.prepare_partition();
    println!(
        "session start: {} matches across {} pattern nodes",
        engine.result().total_matches(),
        engine.pattern().node_count()
    );

    let mut total_eliminated = 0usize;
    let mut total_updates = 0usize;
    for round in 0..10 {
        let protocol = UpdateProtocol::from_scale(4, 24);
        let batch = generate_batch(
            engine.graph(),
            engine.pattern(),
            &interner,
            &protocol,
            1000 + round,
        );
        let strategy = if round % 2 == 0 {
            Strategy::UaGpnm
        } else {
            Strategy::UaGpnmNoPar
        };
        let stats = engine
            .subsequent_query(&batch, strategy)
            .expect("generated batches are valid");
        total_eliminated += stats.eliminated;
        total_updates += stats.updates_submitted;
        println!(
            "round {:>2} [{:<13}] {:>5} updates, {:>3} eliminated, {:>3} repairs, {:?}, {} matches",
            round,
            strategy.name(),
            stats.updates_submitted,
            stats.eliminated,
            stats.repair_calls,
            stats.total_time,
            engine.result().total_matches()
        );
        // Session-long invariant: incremental == from scratch.
        assert_eq!(
            engine.result(),
            &engine.scratch_query(),
            "round {round} diverged from scratch recomputation"
        );
    }
    println!(
        "\nsession end: {} / {} updates eliminated across the session; every round verified against a from-scratch recomputation.",
        total_eliminated, total_updates
    );
}
