//! Continuous queries: many standing patterns on one `GpnmService`,
//! streamed data-update batches, per-tick match deltas.
//!
//! The serving shape of the paper's premise — updates arrive continuously,
//! so don't re-match from scratch *and* don't repair the shared `SLen`
//! index once per pattern. Registers four standing queries over one
//! evolving social graph, streams eight ticks of updates through one
//! `apply` call each, prints what changed per query, and verifies after
//! every tick that each standing result is bitwise what a dedicated
//! single-pattern engine would report.
//!
//! Along the way it exercises the concurrent read front-end: a reader
//! thread spins on `read_view` snapshots *while* the main thread ticks
//! (readers never block on a tick), and a subscription's delta stream is
//! folded back over its base view to reconstruct the final result.
//!
//! Run with: `cargo run --release --example continuous_queries`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ua_gpnm::prelude::*;
use ua_gpnm::workload::{
    generate_batch, generate_pattern, generate_social_graph, PatternConfig, SocialGraphConfig,
    UpdateProtocol,
};

fn main() {
    let (graph, interner) = generate_social_graph(&SocialGraphConfig {
        nodes: 800,
        edges: 4_000,
        labels: 12,
        communities: 12,
        seed: 11,
        ..Default::default()
    });

    // Fallible, builder-style construction: backend and memory budget are
    // runtime configuration, and misconfiguration is an Err, not a panic.
    let mut service = GpnmService::builder()
        .backend(BackendKind::Sparse)
        .max_index_gb(1)
        .build(graph.clone())
        .expect("sparse backends are never refused");

    // Four standing queries — and, for verification, one dedicated
    // single-pattern engine each (the k-engines deployment the service
    // replaces).
    let mut handles = Vec::new();
    let mut shadows = Vec::new();
    for i in 0..4u64 {
        let pattern = generate_pattern(
            &PatternConfig {
                nodes: 5,
                edges: 5,
                bound_range: (1, 3),
                seed: 100 + i,
            },
            &interner,
        );
        let handle = service
            .register_pattern(pattern.clone(), MatchSemantics::Simulation)
            .expect("non-empty pattern");
        let mut shadow = GpnmEngine::<SparseIndex>::with_backend(
            graph.clone(),
            pattern,
            MatchSemantics::Simulation,
        );
        shadow.initial_query();
        println!(
            "registered {handle}: {} initial matches",
            service.result(handle).unwrap().total_matches()
        );
        handles.push(handle);
        shadows.push(shadow);
    }
    println!(
        "shared index: {} rows resident covering {} labels at depth {}\n",
        service.backend().resident_rows(),
        service.requirements().labels().len(),
        service.requirements().depth()
    );

    // The concurrent read front-end: a subscription captures every tick's
    // delta for one query, and a pinned reader on another thread consumes
    // published snapshots *while* the service ticks — `read_view` is
    // `&self` and never blocks on `apply`.
    let sub_base = service.read_view(handles[1]).unwrap();
    let sub = service.subscribe(handles[1]).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let reader_thread = {
        let pinned = service.reader().pinned(handles[0]).unwrap();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut snapshots = 0u64;
            let mut last_version = 0u64;
            while !stop.load(Ordering::Acquire) {
                let view = pinned.view();
                assert!(view.result_version >= last_version, "versions went back");
                last_version = view.result_version;
                snapshots += 1;
            }
            (snapshots, last_version)
        })
    };

    let protocol = UpdateProtocol::from_scale(0, 16); // data-only ticks
    for tick in 0..8u64 {
        let batch = generate_batch(
            service.graph(),
            &PatternGraph::new(),
            &interner,
            &protocol,
            2000 + tick,
        );
        // One apply: the graph mutates and SLen repairs exactly once,
        // every standing query gets its own delta.
        let report = service.apply(&batch).expect("generated batches are valid");
        println!("{}", report.summary());
        for (&handle, shadow) in handles.iter().zip(shadows.iter_mut()) {
            let delta = report.delta_for(handle).expect("registered");
            if !delta.is_empty() {
                println!(
                    "  {handle}: +{} -{} -> {} matches (v{})",
                    delta.added.len(),
                    delta.removed.len(),
                    service.result(handle).unwrap().total_matches(),
                    delta.result_version
                );
            }
            // The equivalence the service is built on: same batch through a
            // dedicated engine, bitwise-equal standing result.
            shadow
                .subsequent_query(&batch, Strategy::UaGpnm)
                .expect("valid batch");
            assert_eq!(
                service.result(handle).unwrap(),
                shadow.result(),
                "tick {tick}: service diverged from the dedicated engine"
            );
        }
    }

    stop.store(true, Ordering::Release);
    let (snapshots, last_version) = reader_thread.join().expect("reader thread");
    println!(
        "\nconcurrent reader: {snapshots} lock-free snapshots during the ticks, \
         last at v{last_version}"
    );

    // Fold the subscription's stream over its base view: the deltas alone
    // reconstruct the final standing result exactly.
    let mut folded = sub_base.result.clone();
    let mut events = 0;
    while let Some(SubEvent::Delta(delta)) = sub.try_recv() {
        folded = delta.apply_to(&folded);
        events += 1;
    }
    let live = service.read_view(handles[1]).unwrap();
    assert_eq!(folded, live.result, "stream diverged from the live view");
    println!(
        "subscription on {}: {events} deltas reconstruct the live view (v{})",
        handles[1], live.result_version
    );

    // Standing queries come and go: deregistering narrows the shared index
    // to what the survivors need.
    let before = service.backend().resident_rows();
    service.deregister(handles[0]).expect("registered");
    service.deregister(handles[2]).expect("registered");
    println!(
        "\nderegistered 2 of 4 queries: {} -> {} resident rows",
        before,
        service.backend().resident_rows()
    );
    println!(
        "every tick verified bitwise against {} dedicated engines.",
        shadows.len()
    );
}
