//! Team finding in a synthetic organization — the paper's §I motivating
//! application (Lappas et al. [6]).
//!
//! Generates a community-structured collaboration graph, asks for an IT
//! project team (PM + SE + TE + S with hop bounds), then simulates a burst
//! of organizational churn (hires, departures, new collaborations) and
//! compares all four strategies on the same batch.
//!
//! Run with: `cargo run --release --example team_finding`

use ua_gpnm::prelude::*;
use ua_gpnm::workload::{generate_batch, generate_social_graph, SocialGraphConfig, UpdateProtocol};

fn main() {
    // An 800-person organization with 12 roles clustered in departments.
    let (graph, interner) = generate_social_graph(&SocialGraphConfig {
        nodes: 800,
        edges: 6_000,
        labels: 12,
        communities: 12,
        label_coherence: 0.9,
        intra_community_bias: 0.85,
        seed: 2024,
    });
    println!(
        "organization: {} people, {} collaboration edges, {} roles",
        graph.node_count(),
        graph.edge_count(),
        interner.len()
    );

    // The Figure 1(b)-style team pattern over generated role labels:
    // a PM-like lead within 3 hops of an engineer and a support role,
    // engineer within 4 hops of a tester.
    let (pattern, interner, _names) = PatternGraphBuilder::new()
        .node("lead", "L0")
        .node("engineer", "L1")
        .node("tester", "L2")
        .node("support", "L3")
        .edge("lead", "engineer", 3)
        .edge("lead", "support", 3)
        .edge("engineer", "tester", 4)
        .build_with_interner(interner)
        .expect("team pattern is well-formed");

    let mut engine = GpnmEngine::new(graph, pattern, MatchSemantics::Simulation);
    engine.initial_query();
    println!("\n== IQuery: candidates per role ==");
    for u in engine.pattern().nodes() {
        let label = engine.pattern().label(u).expect("live");
        println!(
            "  {}: {} candidates",
            interner.name_or_placeholder(label),
            engine.result().set(u).len()
        );
    }

    // Organizational churn: 8 pattern tweaks + 80 graph updates.
    let protocol = UpdateProtocol::from_scale(8, 80);
    let batch = generate_batch(engine.graph(), engine.pattern(), &interner, &protocol, 99);
    println!("\nchurn batch: {} updates", batch.len());

    println!("\n== strategy comparison on the identical batch ==");
    println!(
        "{:<15} {:>12} {:>12} {:>12} {:>12}",
        "strategy", "total", "eliminated", "repairs", "slen-changes"
    );
    let mut reference: Option<ua_gpnm::matcher::MatchResult> = None;
    for strategy in Strategy::PAPER {
        let mut run = engine.clone();
        if strategy.partitioned() {
            run.prepare_partition();
        }
        let stats = run
            .subsequent_query(&batch, strategy)
            .expect("batch validated");
        println!(
            "{:<15} {:>12?} {:>12} {:>12} {:>12}",
            strategy.name(),
            stats.total_time,
            stats.eliminated,
            stats.repair_calls,
            stats.slen_changes
        );
        match &reference {
            None => reference = Some(run.result().clone()),
            Some(r) => assert_eq!(r, run.result(), "strategies must agree"),
        }
    }
    println!("\nall four strategies returned identical SQuery results.");
}
