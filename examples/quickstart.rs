//! Quickstart: the paper's running example end to end.
//!
//! Builds the Figure 1 data/pattern graphs, answers the initial GPNM query
//! (Table I), then applies the four updates of Example 2 (UP1, UP2, UD1,
//! UD2) through UA-GPNM and shows that the elimination analysis leaves the
//! result untouched — the paper's headline observation.
//!
//! Run with: `cargo run --release --example quickstart`

use std::collections::HashMap;

use ua_gpnm::graph::paper::fig1;
use ua_gpnm::matcher::render_match_table;
use ua_gpnm::prelude::*;

fn main() {
    let fig = fig1();
    let reverse: HashMap<NodeId, String> = fig.names.iter().map(|(k, &v)| (v, k.clone())).collect();

    // ------------------------------------------------------------------
    // IQuery: the initial node matching (paper Table I).
    // ------------------------------------------------------------------
    let mut engine = GpnmEngine::new(
        fig.graph.clone(),
        fig.pattern.clone(),
        MatchSemantics::Simulation,
    );
    engine.initial_query();
    println!("== IQuery (paper Table I) ==");
    println!(
        "{}",
        render_match_table(engine.pattern(), engine.result(), &fig.interner, |n| {
            reverse[&n].clone()
        })
    );

    // ------------------------------------------------------------------
    // Example 2: two pattern updates + two data updates.
    // ------------------------------------------------------------------
    let mut batch = UpdateBatch::new();
    batch.push(PatternUpdate::InsertEdge {
        from: fig.p_pm,
        to: fig.p_te,
        bound: Bound::Hops(2),
    }); // UP1
    batch.push(PatternUpdate::InsertEdge {
        from: fig.p_s,
        to: fig.p_te,
        bound: Bound::Hops(4),
    }); // UP2
    batch.push(DataUpdate::InsertEdge {
        from: fig.se1,
        to: fig.te2,
    }); // UD1
    batch.push(DataUpdate::InsertEdge {
        from: fig.db1,
        to: fig.s1,
    }); // UD2

    let stats = engine
        .subsequent_query(&batch, Strategy::UaGpnm)
        .expect("the Example 2 batch is valid");

    println!("== SQuery after UP1, UP2, UD1, UD2 (UA-GPNM) ==");
    println!(
        "{}",
        render_match_table(engine.pattern(), engine.result(), &fig.interner, |n| {
            reverse[&n].clone()
        })
    );
    println!("{}", stats.summary());
    println!(
        "\n{} of the {} updates were eliminated before any repair ran —",
        stats.eliminated, stats.updates_submitted
    );
    println!("exactly the paper's Example 2/9 story: UD1 covers UD2 (Type II),");
    println!("UP1 covers UP2 (Type I), and UD1 makes UP1 a no-op (Type III),");
    println!("so the subsequent result equals the initial one.");
}
