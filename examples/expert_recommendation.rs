//! Expert recommendation with top-k ranking — §I's second motivating
//! application (Morris et al. [7]) plus the paper's §VIII future-work
//! item (2), selecting the top-k matching nodes.
//!
//! Uses the stricter `DualSimulation` semantics (an expert must both reach
//! and be reachable from its collaborators) and ranks the matched experts
//! by aggregate closeness to their partner matches.
//!
//! Run with: `cargo run --release --example expert_recommendation`

use ua_gpnm::engine::top_k_matches;
use ua_gpnm::prelude::*;
use ua_gpnm::workload::{generate_social_graph, SocialGraphConfig};

fn main() {
    let (graph, interner) = generate_social_graph(&SocialGraphConfig {
        nodes: 600,
        edges: 4_800,
        labels: 8,
        communities: 8,
        label_coherence: 0.9,
        intra_community_bias: 0.8,
        seed: 4242,
    });

    // Question-answering triangle: an expert close to both a moderator and
    // an active answerer.
    let (pattern, interner, names) = PatternGraphBuilder::new()
        .node("expert", "L0")
        .node("moderator", "L1")
        .node("answerer", "L2")
        .edge("expert", "moderator", 2)
        .edge("expert", "answerer", 3)
        .edge("answerer", "expert", 3)
        .build_with_interner(interner)
        .expect("expert pattern is well-formed");

    let mut engine = GpnmEngine::new(graph, pattern, MatchSemantics::DualSimulation);
    engine.initial_query();

    let expert = names["expert"];
    let n_matched = engine.result().set(expert).len();
    println!(
        "{} experts satisfy the pattern under dual bounded simulation",
        n_matched
    );

    let top = top_k_matches(engine.pattern(), engine.result(), engine.slen(), expert, 5);
    println!("\n== top-5 experts by aggregate closeness ==");
    for (rank, m) in top.iter().enumerate() {
        println!(
            "  #{} node {} (closeness score {}, label {})",
            rank + 1,
            m.node,
            m.score,
            interner.name_or_placeholder(engine.graph().label(m.node).expect("live"))
        );
    }

    // The recommendation survives churn: drop the current #1's best edge
    // and re-query incrementally.
    if let Some(best) = top.first() {
        let victim = best.node;
        if let Some(&out) = engine.graph().out_neighbors(victim).first() {
            let mut batch = UpdateBatch::new();
            batch.push(DataUpdate::DeleteEdge {
                from: victim,
                to: out,
            });
            let stats = engine
                .subsequent_query(&batch, Strategy::UaGpnm)
                .expect("valid single-delete batch");
            println!(
                "\nafter deleting {victim}->{out}: repair took {:?} ({} SLen changes)",
                stats.total_time, stats.slen_changes
            );
            let new_top =
                top_k_matches(engine.pattern(), engine.result(), engine.slen(), expert, 5);
            println!("new top-5:");
            for (rank, m) in new_top.iter().enumerate() {
                println!("  #{} node {} (score {})", rank + 1, m.node, m.score);
            }
        }
    }
}
