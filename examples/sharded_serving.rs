//! Sharded serving: many standing patterns placed across a `GpnmCluster`,
//! parallel fan-out ticks, per-shard index isolation.
//!
//! The distribution shape of the ROADMAP's serving north star: k shards,
//! each a full `GpnmService` over its own graph replica with a sparse
//! index narrowed to only *that shard's* patterns' requirements. A batch
//! is validated once and fanned out to all shards in parallel on the
//! shared worker pool; per-pattern results stay bitwise identical to a
//! single service (verified every tick here), but one deep or
//! label-hungry pattern no longer taxes every other pattern's repair.
//!
//! Run with: `cargo run --release --example sharded_serving`

use ua_gpnm::prelude::*;
use ua_gpnm::workload::{
    generate_batch, generate_pattern, generate_social_graph, PatternConfig, SocialGraphConfig,
    UpdateProtocol,
};

fn main() {
    let (graph, interner) = generate_social_graph(&SocialGraphConfig {
        nodes: 800,
        edges: 4_000,
        labels: 12,
        communities: 12,
        seed: 11,
        ..Default::default()
    });

    // A 3-shard cluster with round-robin placement (spread for fan-out
    // parallelism; `LeastLoaded` would instead co-locate patterns sharing
    // label families to minimize total index growth) and per-shard
    // parallel refresh.
    let mut cluster = GpnmCluster::builder()
        .shards(3)
        .backend(BackendKind::Sparse)
        .placement(RoundRobin::new())
        .refresh_threads(2)
        .build(graph.clone())
        .expect("sparse backends are never refused");

    // The single service the cluster replaces — kept as a shadow to show
    // the results are bitwise identical, tick for tick.
    let mut shadow = GpnmService::builder()
        .backend(BackendKind::Sparse)
        .build(graph)
        .expect("sparse backends are never refused");

    // Six standing queries with varying depth: the deep ones (larger
    // bounds) force *their* shard's index deep, and only theirs.
    let mut handles = Vec::new();
    let mut shadow_handles = Vec::new();
    for i in 0..6u64 {
        let pattern = generate_pattern(
            &PatternConfig {
                nodes: 5,
                edges: 5,
                bound_range: if i % 3 == 0 { (3, 4) } else { (1, 2) },
                seed: 100 + i,
            },
            &interner,
        );
        let handle = cluster
            .register_pattern(pattern.clone(), MatchSemantics::Simulation)
            .expect("generated patterns are non-empty");
        let sh = shadow
            .register_pattern(pattern, MatchSemantics::Simulation)
            .expect("generated patterns are non-empty");
        println!(
            "registered {handle} on shard {} ({} matches)",
            cluster.shard_of(handle).expect("registered"),
            cluster.result(handle).expect("registered").total_matches(),
        );
        handles.push(handle);
        shadow_handles.push(sh);
    }

    // Each shard's index covers only its own patterns' labels and depth —
    // the isolation a single union index cannot offer.
    for (i, shard) in cluster.shards().iter().enumerate() {
        println!(
            "shard {i}: {} patterns, depth {}, {} rows resident",
            shard.pattern_count(),
            shard.requirements().depth(),
            shard.backend().resident_rows(),
        );
    }
    println!(
        "single-service union for comparison: depth {}, {} rows resident",
        shadow.requirements().depth(),
        shadow.backend().resident_rows(),
    );

    // Stream five ticks through both deployments.
    let protocol = UpdateProtocol::from_scale(0, 12);
    for tick in 0..5u64 {
        let batch = generate_batch(
            cluster.graph(),
            &PatternGraph::new(),
            &interner,
            &protocol,
            900 + tick,
        );
        let report = cluster.apply(&batch).expect("generated batches are valid");
        let shadow_report = shadow.apply(&batch).expect("generated batches are valid");
        println!("{}", report.summary());
        for (&h, &sh) in handles.iter().zip(shadow_handles.iter()) {
            let delta = report.delta_for(h).expect("registered");
            if !delta.added.is_empty() || !delta.removed.is_empty() {
                println!("  {h}: +{} -{}", delta.added.len(), delta.removed.len());
            }
            assert_eq!(
                cluster.result(h).expect("registered"),
                shadow.result(sh).expect("registered"),
                "sharding must never change answers"
            );
            assert_eq!(
                Some(delta),
                shadow_report.delta_for(sh),
                "merged deltas must match the single service's"
            );
        }
    }
    println!(
        "verified: {} patterns × 5 ticks bitwise identical across {} shards and the \
         single-service shadow",
        handles.len(),
        cluster.shard_count(),
    );
}
