//! # ua-gpnm — Updates-Aware Graph Pattern based Node Matching
//!
//! A faithful, production-quality Rust reproduction of
//! *"Updates-Aware Graph Pattern based Node Matching"* (Sun, Liu, Wang,
//! Zhou — ICDE 2020). GPNM finds, for every node of a small pattern graph,
//! the set of data-graph nodes participating in a bounded-graph-simulation
//! match; UA-GPNM answers the query *after a batch of updates* to both
//! graphs without re-running one incremental pass per update, by detecting
//! **elimination relationships** among the updates and indexing them in an
//! **EH-Tree**.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — dynamic labeled digraphs, pattern graphs, CSR snapshots.
//! * [`distance`] — dense/hybrid all-pairs shortest-path-length (`SLen`)
//!   matrices, incremental repair, label-based partitioned computation.
//! * [`matcher`] — the BGS fixpoint matcher and incremental match repair.
//! * [`updates`] — update model, DER-I/II/III elimination detection,
//!   EH-Tree.
//! * [`engine`] — end-to-end strategies: `UA-GPNM` and the `INC-GPNM`,
//!   `EH-GPNM`, `UA-GPNM-NoPar` baselines.
//! * [`adaptive`] — the online cost-model controller: per-pattern refresh
//!   strategy selection and refresh-parallelism tuning from live tick
//!   stats.
//! * [`service`] — the continuous-query layer: many standing patterns over
//!   one graph, shared single-pass repair, per-tick [`prelude::MatchDelta`]s.
//! * [`cluster`] — the sharded serving layer: k service shards with
//!   narrowed indices, pluggable pattern placement, parallel fan-out ticks.
//! * [`workload`] — synthetic SNAP stand-ins and the paper's experiment
//!   protocol.
//! * [`telemetry`] — tracing spans + metrics registry over the whole tick
//!   pipeline, with Chrome-trace, span-summary, and Prometheus exporters
//!   (`gpnm replay --trace-out/--trace-summary/--metrics-out`).
//!
//! ## Quickstart
//!
//! ```
//! use ua_gpnm::prelude::*;
//!
//! // The paper's Figure 1 running example.
//! let fig = ua_gpnm::graph::paper::fig1();
//! let mut engine = GpnmEngine::new(fig.graph, fig.pattern, MatchSemantics::Simulation);
//! let iquery = engine.initial_query();
//! // PM matches PM1 and PM2 (paper Table I / Example 5).
//! let pms: Vec<_> = iquery.matches_of(fig.p_pm).collect();
//! assert_eq!(pms, vec![fig.pm1, fig.pm2]);
//! ```
//!
//! For the continuous-query shape — register k standing patterns once,
//! stream update batches, receive per-pattern added/removed deltas — see
//! [`prelude::GpnmService`] and `examples/continuous_queries.rs`.
//!
//! ## Building and verifying
//!
//! The workspace is a single Cargo build; the tier-1 verification gate is:
//!
//! ```text
//! cargo build --release && cargo test -q
//! ```
//!
//! CI additionally runs `cargo test --workspace`, `cargo fmt --check`,
//! `cargo clippy --workspace --all-targets -- -D warnings`, compiles every
//! Criterion bench (`cargo bench --no-run --workspace`), and smoke-runs the
//! four `examples/`. Property-test volume is tunable via the
//! `PROPTEST_CASES` environment variable.
//!
//! The build environment is offline, so the usual crates.io dependencies
//! (`rand`, `parking_lot`, `crossbeam`, `proptest`, `criterion`) are
//! provided by minimal API-compatible shims under `shims/`; swapping a shim
//! for the real crate is a one-line edit in the workspace manifest's
//! `[workspace.dependencies]`.

#![forbid(unsafe_code)]

pub use gpnm_adaptive as adaptive;
pub use gpnm_cluster as cluster;
pub use gpnm_distance as distance;
pub use gpnm_engine as engine;
pub use gpnm_graph as graph;
pub use gpnm_matcher as matcher;
pub use gpnm_service as service;
pub use gpnm_telemetry as telemetry;
pub use gpnm_updates as updates;
pub use gpnm_workload as workload;

/// Convenience re-exports covering the common API surface.
pub mod prelude {
    pub use gpnm_adaptive::{ControllerConfig, StrategyController, ThreadTuner, TickFeatures};
    pub use gpnm_cluster::{
        ClusterBuilder, ClusterError, ClusterHandle, ClusterTickReport, GpnmCluster, LeastLoaded,
        RebalanceMove, RoundRobin, ShardLoad, ShardPlacement,
    };
    pub use gpnm_distance::{AnyBackend, BackendKind, SlenBackend, SlenRequirements, SparseIndex};
    pub use gpnm_engine::{EngineError, ExecStats, GpnmEngine, RefreshStrategy, Strategy};
    pub use gpnm_graph::{
        Bound, DataGraph, DataGraphBuilder, GraphError, Label, LabelInterner, NodeId, PatternGraph,
        PatternGraphBuilder, PatternNodeId,
    };
    pub use gpnm_matcher::{MatchDelta, MatchResult, MatchSemantics};
    pub use gpnm_service::{
        GpnmService, HandleId, PatternHandle, PatternHost, PinnedReader, ReadError, ReadFront,
        ReadView, ServiceBuilder, ServiceError, SubEvent, Subscription, TickOutcome, TickReport,
        TickStats, DEFAULT_SUBSCRIPTION_CAPACITY,
    };
    pub use gpnm_telemetry::{install_collector, metrics_text, SpanCollector, TickRecorder};
    pub use gpnm_updates::{DataUpdate, PatternUpdate, Update, UpdateBatch};
}
