//! `gpnm` — command-line GPNM over SNAP-style edge lists.
//!
//! ```text
//! gpnm match  <edge-list> [--labels N] [--pattern-nodes N] [--seed S]
//! gpnm bench  <edge-list> [--labels N] [--updates N] [--seed S]
//! gpnm demo
//! ```
//!
//! `match` loads a whitespace edge list (labels assigned per DESIGN.md §5,
//! since SNAP graphs are unlabeled), generates a random pattern and prints
//! the match table. `bench` additionally generates an update batch and
//! compares all four strategies. `demo` runs the paper's Figure 1 example.

use std::path::PathBuf;
use std::process::ExitCode;

use ua_gpnm::matcher::render_match_table;
use ua_gpnm::prelude::*;
use ua_gpnm::workload::{
    datasets::from_edge_list, generate_batch, generate_pattern, PatternConfig, UpdateProtocol,
};

struct Args {
    labels: usize,
    pattern_nodes: usize,
    updates: usize,
    seed: u64,
}

fn parse_flags(rest: &[String]) -> Result<Args, String> {
    let mut args = Args {
        labels: 30,
        pattern_nodes: 6,
        updates: 40,
        seed: 7,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut take = |name: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<usize>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--labels" => args.labels = take("--labels")?,
            "--pattern-nodes" => args.pattern_nodes = take("--pattern-nodes")?,
            "--updates" => args.updates = take("--updates")?,
            "--seed" => args.seed = take("--seed")? as u64,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn load(path: &str, args: &Args) -> Result<(DataGraph, LabelInterner), String> {
    let path = PathBuf::from(path);
    from_edge_list(&path, args.labels, args.seed)
        .map_err(|e| format!("cannot load {}: {e}", path.display()))
}

fn cmd_match(path: &str, args: &Args) -> Result<(), String> {
    let (graph, interner) = load(path, args)?;
    eprintln!(
        "loaded {} nodes / {} edges; building SLen index ...",
        graph.node_count(),
        graph.edge_count()
    );
    let pattern = generate_pattern(
        &PatternConfig {
            nodes: args.pattern_nodes,
            edges: args.pattern_nodes,
            bound_range: (1, 3),
            seed: args.seed,
        },
        &interner,
    );
    let mut engine = GpnmEngine::new(graph, pattern, MatchSemantics::Simulation);
    engine.initial_query();
    println!(
        "{}",
        render_match_table(engine.pattern(), engine.result(), &interner, |n| n
            .to_string())
    );
    Ok(())
}

fn cmd_bench(path: &str, args: &Args) -> Result<(), String> {
    let (graph, interner) = load(path, args)?;
    let pattern = generate_pattern(
        &PatternConfig {
            nodes: args.pattern_nodes,
            edges: args.pattern_nodes,
            bound_range: (1, 3),
            seed: args.seed,
        },
        &interner,
    );
    let mut base = GpnmEngine::new(graph, pattern, MatchSemantics::Simulation);
    base.initial_query();
    let protocol = UpdateProtocol::from_scale(args.pattern_nodes, args.updates);
    let batch = generate_batch(
        base.graph(),
        base.pattern(),
        &interner,
        &protocol,
        args.seed,
    );
    println!("batch: {} updates", batch.len());
    println!(
        "{:<15} {:>14} {:>11} {:>8}",
        "strategy", "query time", "eliminated", "repairs"
    );
    for strategy in Strategy::PAPER {
        let mut engine = base.clone();
        if strategy.partitioned() {
            engine.prepare_partition();
        }
        let stats = engine
            .subsequent_query(&batch, strategy)
            .map_err(|e| e.to_string())?;
        println!(
            "{:<15} {:>14?} {:>11} {:>8}",
            strategy.name(),
            stats.total_time,
            stats.eliminated,
            stats.repair_calls
        );
    }
    Ok(())
}

fn cmd_demo() {
    let fig = ua_gpnm::graph::paper::fig1();
    let reverse: std::collections::HashMap<NodeId, String> =
        fig.names.iter().map(|(k, &v)| (v, k.clone())).collect();
    let mut engine = GpnmEngine::new(fig.graph, fig.pattern, MatchSemantics::Simulation);
    engine.initial_query();
    println!(
        "{}",
        render_match_table(engine.pattern(), engine.result(), &fig.interner, |n| {
            reverse[&n].clone()
        })
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.split_first() {
        Some((cmd, _rest)) if cmd == "demo" => {
            cmd_demo();
            Ok(())
        }
        Some((cmd, rest)) if cmd == "match" && !rest.is_empty() => match parse_flags(&rest[1..]) {
            Ok(args) => cmd_match(&rest[0], &args),
            Err(e) => Err(e),
        },
        Some((cmd, rest)) if cmd == "bench" && !rest.is_empty() => match parse_flags(&rest[1..]) {
            Ok(args) => cmd_bench(&rest[0], &args),
            Err(e) => Err(e),
        },
        _ => Err(
            "usage: gpnm demo | gpnm match <edge-list> [flags] | gpnm bench <edge-list> [flags]\n\
             flags: --labels N --pattern-nodes N --updates N --seed S"
                .to_owned(),
        ),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
