//! `gpnm` — command-line GPNM over SNAP-style edge lists.
//!
//! ```text
//! gpnm match  <edge-list> [--backend B] [--labels N] [--pattern-nodes N] [--seed S]
//! gpnm bench  <edge-list> [--backend B] [--labels N] [--updates N] [--seed S]
//! gpnm smoke  [--backend B] [--nodes N] [--edges M] [--labels N] [--updates N] [--seed S]
//! gpnm replay [--backend B] [--nodes N] [--edges M] [--patterns K] [--ticks T]
//!             [--updates N] [--trace FILE] [--labels N] [--seed S]
//!             [--shards K] [--threads T] [--stats] [--stats-json FILE] [--subscribe]
//!             [--adaptive] [--rebalance-every N]
//!             [--trace-summary] [--trace-out FILE] [--metrics-out FILE]
//! gpnm demo
//! ```
//!
//! `match` loads a whitespace edge list (labels assigned per DESIGN.md §5,
//! since SNAP graphs are unlabeled), generates a random pattern and prints
//! the match table. `bench` additionally generates an update batch and
//! compares all four strategies. `smoke` generates a power-law social
//! graph in-process (no file needed) and runs an initial + subsequent
//! query — the large-graph CI entry point. `replay` is the
//! continuous-query mode: register `--patterns` standing patterns on one
//! `GpnmService`, stream `--ticks` data-update batches (generated, or
//! parsed from a `--trace` file of `---`-separated trace chunks), and
//! print the per-tick, per-pattern match deltas. With `--shards K` the
//! patterns are placed across a K-shard `GpnmCluster` (round-robin spread
//! by default; `--placement least-loaded` packs by marginal index growth
//! instead) and every tick fans out to all shards in parallel;
//! `--threads T` fans each shard's (or the single service's) per-pattern
//! refresh out over T pool lanes, and `--stats` prints the per-tick
//! `TickStats` accounting (`--stats-json FILE` writes the same stats as
//! one JSON object per tick). `--adaptive` turns on the online cost-model
//! controller: per-pattern refresh strategies and refresh parallelism are
//! then picked each tick from live timings instead of fixed knobs, and
//! `--rebalance-every N` (clusters only) migrates patterns between shards
//! every N ticks when a move shrinks the total resident index — results
//! stay bitwise identical either way. Either way the replay drives the host through
//! the `PatternHost` trait — the register and tick loops are one generic
//! code path. `--subscribe` additionally consumes every pattern's deltas
//! through the subscription API and cross-checks that the folded stream
//! reconstructs the live `ReadView`. `demo` runs the paper's Figure 1
//! example.
//!
//! The telemetry exporters: `--trace-summary` installs a span collector
//! for the run and prints a per-span-name summary table (count,
//! total/p50/p99 duration); `--trace-out FILE` writes the same collected
//! spans as Chrome trace-event JSON (load in `chrome://tracing` or
//! Perfetto to see the nested tick → phase → per-pattern flame);
//! `--metrics-out FILE` dumps the process metrics registry (counters,
//! gauges, histograms) in Prometheus text exposition format after the
//! last tick.
//!
//! `--backend {dense,partitioned,sparse,paged}` selects the `SLen`
//! backend. The dense backends materialize an `n × n` matrix; builds whose
//! estimated matrix exceeds `--max-index-gb` (default 4 GiB) are refused
//! with a pointer at `--backend sparse` instead of running into the OOM
//! killer. `paged` spills the sparse rows to a temp file and keeps a
//! hot-row cache whose size `--cache-budget-mb` bounds — the backend for
//! graphs whose index outgrows RAM; `--stats` shows its per-tick cache
//! hit rates and page IO.

use std::path::PathBuf;
use std::process::ExitCode;

use ua_gpnm::distance::{
    IncrementalIndex, PagedIndex, PartitionedBackend, SlenBackend, SparseIndex,
};
use ua_gpnm::engine::BackendKind;
use ua_gpnm::matcher::render_match_table;
use ua_gpnm::prelude::*;
use ua_gpnm::workload::{
    datasets::from_edge_list, generate_batch, generate_pattern, generate_social_graph, read_trace,
    PatternConfig, SocialGraphConfig, UpdateProtocol,
};

struct Args {
    labels: usize,
    pattern_nodes: usize,
    updates: usize,
    seed: u64,
    backend: BackendKind,
    max_index_gb: f64,
    cache_budget_mb: Option<f64>,
    nodes: usize,
    edges: usize,
    patterns: usize,
    ticks: usize,
    trace: Option<String>,
    shards: Option<usize>,
    threads: usize,
    stats: bool,
    stats_json: Option<String>,
    subscribe: bool,
    placement: PlacementKind,
    adaptive: bool,
    rebalance_every: Option<u64>,
    trace_summary: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

/// Which `ShardPlacement` strategy `--placement` selects.
#[derive(Clone, Copy, PartialEq)]
enum PlacementKind {
    /// Spread patterns evenly across shards (maximum fan-out parallelism).
    RoundRobin,
    /// Minimize marginal resident-row growth (maximum index locality —
    /// co-locates patterns over the same label families).
    LeastLoaded,
}

/// Which subcommand the flags are parsed for — gates subcommand-specific
/// flags so e.g. `gpnm match x --ticks 3` fails loudly instead of
/// silently ignoring the knob.
#[derive(Clone, Copy, PartialEq)]
enum Cmd {
    /// `match`/`bench`: graph comes from an edge-list file.
    FromFile,
    /// `smoke`: in-process generator, single pattern.
    Smoke,
    /// `replay`: in-process generator, k standing patterns + tick stream.
    Replay,
}

/// Flag parsing differs per subcommand in two ways: the default backend
/// (`smoke`/`replay` default to 100k nodes, where only `sparse` fits the
/// memory guard — a bare `gpnm smoke` must work out of the box), and which
/// flags are accepted at all (`match`/`bench` read their graph from an
/// edge list; silently accepting a generator-shape flag there would let
/// users believe they subsampled).
fn parse_flags(rest: &[String], default_backend: BackendKind, cmd: Cmd) -> Result<Args, String> {
    let generated = cmd != Cmd::FromFile;
    let mut args = Args {
        labels: 30,
        pattern_nodes: 6,
        updates: 40,
        seed: 7,
        backend: default_backend,
        max_index_gb: 4.0,
        cache_budget_mb: None,
        nodes: 100_000,
        edges: 400_000,
        patterns: 3,
        ticks: 5,
        trace: None,
        shards: None,
        threads: 0,
        stats: false,
        stats_json: None,
        subscribe: false,
        placement: PlacementKind::RoundRobin,
        adaptive: false,
        rebalance_every: None,
        trace_summary: false,
        trace_out: None,
        metrics_out: None,
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut take_str = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--labels" => args.labels = parse_num(take_str("--labels")?, "--labels")?,
            "--pattern-nodes" => {
                args.pattern_nodes = parse_num(take_str("--pattern-nodes")?, "--pattern-nodes")?;
            }
            "--updates" => args.updates = parse_num(take_str("--updates")?, "--updates")?,
            "--seed" => args.seed = parse_num(take_str("--seed")?, "--seed")? as u64,
            "--nodes" | "--edges" if !generated => {
                return Err(format!(
                    "{flag} only applies to `gpnm smoke`/`gpnm replay` (match/bench take \
                     their graph from the edge-list file)"
                ));
            }
            "--cache-budget-mb" if !generated => {
                return Err(format!(
                    "{flag} only applies to `gpnm smoke`/`gpnm replay` (match/bench build \
                     the paged backend with its default 64 MiB cache)"
                ));
            }
            "--cache-budget-mb" => {
                let v = take_str("--cache-budget-mb")?;
                let parsed = v
                    .parse::<f64>()
                    .map_err(|e| format!("--cache-budget-mb: {e}"))?;
                if !parsed.is_finite() || parsed <= 0.0 {
                    return Err(format!(
                        "--cache-budget-mb: expected a positive finite number, got {v}"
                    ));
                }
                args.cache_budget_mb = Some(parsed);
            }
            "--nodes" => args.nodes = parse_num(take_str("--nodes")?, "--nodes")?,
            "--edges" => args.edges = parse_num(take_str("--edges")?, "--edges")?,
            "--patterns" | "--ticks" | "--trace" | "--shards" | "--threads" | "--stats"
            | "--stats-json" | "--subscribe" | "--placement" | "--adaptive"
            | "--rebalance-every" | "--trace-summary" | "--trace-out" | "--metrics-out"
                if cmd != Cmd::Replay =>
            {
                return Err(format!("{flag} only applies to `gpnm replay`"));
            }
            "--patterns" => args.patterns = parse_num(take_str("--patterns")?, "--patterns")?,
            "--ticks" => args.ticks = parse_num(take_str("--ticks")?, "--ticks")?,
            "--trace" => args.trace = Some(take_str("--trace")?.clone()),
            "--shards" => {
                let k = parse_num(take_str("--shards")?, "--shards")?;
                if k == 0 {
                    return Err("--shards: a cluster needs at least one shard".to_owned());
                }
                args.shards = Some(k);
            }
            "--threads" => args.threads = parse_num(take_str("--threads")?, "--threads")?,
            "--stats" => args.stats = true,
            "--stats-json" => args.stats_json = Some(take_str("--stats-json")?.clone()),
            "--subscribe" => args.subscribe = true,
            "--trace-summary" => args.trace_summary = true,
            "--trace-out" => args.trace_out = Some(take_str("--trace-out")?.clone()),
            "--metrics-out" => args.metrics_out = Some(take_str("--metrics-out")?.clone()),
            "--adaptive" => args.adaptive = true,
            "--rebalance-every" => {
                let n = parse_num(take_str("--rebalance-every")?, "--rebalance-every")? as u64;
                if n == 0 {
                    return Err("--rebalance-every: the period must be ≥ 1".to_owned());
                }
                args.rebalance_every = Some(n);
            }
            "--placement" => {
                args.placement = match take_str("--placement")?.as_str() {
                    "round-robin" => PlacementKind::RoundRobin,
                    "least-loaded" => PlacementKind::LeastLoaded,
                    other => {
                        return Err(format!(
                            "--placement: expected round-robin or least-loaded, got {other}"
                        ))
                    }
                };
            }
            "--backend" => args.backend = take_str("--backend")?.parse()?,
            "--max-index-gb" => {
                let v = take_str("--max-index-gb")?;
                let parsed = v
                    .parse::<f64>()
                    .map_err(|e| format!("--max-index-gb: {e}"))?;
                // NaN would make the guard's `bytes > limit` comparison
                // silently false — the exact OOM the guard exists to stop.
                if !parsed.is_finite() || parsed <= 0.0 {
                    return Err(format!(
                        "--max-index-gb: expected a positive finite number, got {v}"
                    ));
                }
                args.max_index_gb = parsed;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse_num(value: &str, name: &str) -> Result<usize, String> {
    value.parse::<usize>().map_err(|e| format!("{name}: {e}"))
}

/// Refuse dense builds whose `n × n` matrix would blow the memory budget —
/// a helpful error beats an OOM kill half an hour into APSP. The size
/// model is `BackendKind::estimated_index_bytes`, the same estimate the
/// service builder's guard enforces, so the subcommands cannot drift.
fn guard_dense_build(backend: BackendKind, nodes: usize, max_index_gb: f64) -> Result<(), String> {
    let Some(bytes) = backend.estimated_index_bytes(nodes) else {
        return Ok(());
    };
    let limit = max_index_gb * (1u64 << 30) as f64;
    if bytes as f64 > limit {
        return Err(format!(
            "refusing to build a dense SLen matrix for {nodes} nodes: \
             {nodes}² × 4 B ≈ {:.1} GiB exceeds --max-index-gb {max_index_gb}. \
             Use `--backend sparse` (bounded rows for pattern-labeled nodes only), \
             or raise --max-index-gb if you really have the RAM.",
            bytes as f64 / (1u64 << 30) as f64
        ));
    }
    Ok(())
}

fn load(path: &str, args: &Args) -> Result<(DataGraph, LabelInterner), String> {
    let path = PathBuf::from(path);
    from_edge_list(&path, args.labels, args.seed)
        .map_err(|e| format!("cannot load {}: {e}", path.display()))
}

fn make_pattern(args: &Args, interner: &LabelInterner) -> PatternGraph {
    generate_pattern(
        &PatternConfig {
            nodes: args.pattern_nodes,
            edges: args.pattern_nodes,
            bound_range: (1, 3),
            seed: args.seed,
        },
        interner,
    )
}

fn run_match<B: SlenBackend>(
    graph: DataGraph,
    interner: &LabelInterner,
    args: &Args,
) -> Result<(), String> {
    eprintln!(
        "loaded {} nodes / {} edges; building {} SLen index ...",
        graph.node_count(),
        graph.edge_count(),
        args.backend
    );
    let pattern = make_pattern(args, interner);
    let mut engine = GpnmEngine::<B>::with_backend(graph, pattern, MatchSemantics::Simulation);
    engine.initial_query();
    eprintln!(
        "index: {} rows resident, ~{:.1} MiB",
        engine.backend().resident_rows(),
        engine.backend().mem_bytes() as f64 / (1u64 << 20) as f64
    );
    println!(
        "{}",
        render_match_table(engine.pattern(), engine.result(), interner, |n| n
            .to_string())
    );
    Ok(())
}

fn run_bench<B: SlenBackend + Clone>(
    graph: DataGraph,
    interner: &LabelInterner,
    args: &Args,
) -> Result<(), String> {
    let pattern = make_pattern(args, interner);
    let mut base = GpnmEngine::<B>::with_backend(graph, pattern, MatchSemantics::Simulation);
    base.initial_query();
    let protocol = UpdateProtocol::from_scale(args.pattern_nodes, args.updates);
    let batch = generate_batch(base.graph(), base.pattern(), interner, &protocol, args.seed);
    println!("backend: {}", args.backend);
    println!("batch: {} updates", batch.len());
    println!(
        "{:<15} {:>14} {:>11} {:>8}",
        "strategy", "query time", "eliminated", "repairs"
    );
    for strategy in Strategy::PAPER {
        let mut engine = base.clone();
        if strategy.partitioned() {
            engine.prepare_partition();
        }
        let stats = engine
            .subsequent_query(&batch, strategy)
            .map_err(|e| e.to_string())?;
        println!(
            "{:<15} {:>14?} {:>11} {:>8}",
            strategy.name(),
            stats.total_time,
            stats.eliminated,
            stats.repair_calls
        );
    }
    Ok(())
}

/// The large-graph end-to-end smoke: generate a power-law graph, answer
/// `IQuery`, apply a generated batch, answer `SQuery` — printing the
/// footprint numbers CI asserts on.
fn run_smoke<B: SlenBackend>(args: &Args, tune: impl FnOnce(&mut B)) -> Result<(), String> {
    let t = std::time::Instant::now();
    let (graph, interner) = generate_social_graph(&SocialGraphConfig {
        nodes: args.nodes,
        edges: args.edges,
        labels: args.labels,
        communities: args.labels,
        seed: args.seed,
        ..Default::default()
    });
    println!(
        "generated {} nodes / {} edges in {:?}",
        graph.node_count(),
        graph.edge_count(),
        t.elapsed()
    );
    let pattern = make_pattern(args, &interner);
    let t = std::time::Instant::now();
    let mut engine = GpnmEngine::<B>::with_backend(graph, pattern, MatchSemantics::Simulation);
    let build_time = t.elapsed();
    tune(engine.backend_mut());
    let t = std::time::Instant::now();
    engine.initial_query();
    println!(
        "backend={} build={build_time:?} iquery={:?} matches={} resident_rows={} index_mib={:.1}",
        args.backend,
        t.elapsed(),
        engine.result().total_matches(),
        engine.backend().resident_rows(),
        engine.backend().mem_bytes() as f64 / (1u64 << 20) as f64
    );
    let protocol = UpdateProtocol::from_scale(args.pattern_nodes, args.updates);
    let batch = generate_batch(
        engine.graph(),
        engine.pattern(),
        &interner,
        &protocol,
        args.seed,
    );
    let stats = engine
        .subsequent_query(&batch, Strategy::UaGpnm)
        .map_err(|e| e.to_string())?;
    println!(
        "squery: {} — matches={} resident_rows={} index_mib={:.1}",
        stats.summary(),
        engine.result().total_matches(),
        engine.backend().resident_rows(),
        engine.backend().mem_bytes() as f64 / (1u64 << 20) as f64
    );
    if let Some(io) = engine.backend().io_stats() {
        println!(
            "paging: hits={} misses={} hit_rate={:.1}% evictions={} pages_read={} \
             pages_written={}",
            io.cache_hits,
            io.cache_misses,
            io.hit_rate() * 100.0,
            io.cache_evictions,
            io.pages_read,
            io.pages_written,
        );
    }
    Ok(())
}

/// Parse a trace file into per-tick chunks (separated by `---` lines).
/// Split line-wise: only an all-dash line is a separator — deletion ops
/// (`-DE ...`) legitimately start with a dash and must survive intact.
fn parse_trace_chunks(path: &str) -> Result<Vec<String>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
    let mut chunks = vec![String::new()];
    for line in text.lines() {
        let trimmed = line.trim();
        if !trimmed.is_empty() && trimmed.chars().all(|c| c == '-') {
            chunks.push(String::new());
        } else {
            let current = chunks.last_mut().expect("starts non-empty");
            current.push_str(line);
            current.push('\n');
        }
    }
    // Blank/comment-only chunks (e.g. a trailing separator) carry no tick.
    chunks.retain(|c| {
        c.lines()
            .any(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
    });
    Ok(chunks)
}

/// One tick's batch: the next trace chunk, or a generated batch against
/// the current graph state.
fn tick_batch(
    args: &Args,
    trace_chunks: &Option<Vec<String>>,
    tick: usize,
    graph: &DataGraph,
    interner: &mut LabelInterner,
    protocol: &UpdateProtocol,
) -> Result<UpdateBatch, String> {
    match trace_chunks {
        Some(chunks) => {
            read_trace(&chunks[tick], interner).map_err(|e| format!("trace tick {tick}: {e}"))
        }
        None => Ok(generate_batch(
            graph,
            &PatternGraph::new(),
            interner,
            protocol,
            args.seed + 1000 + tick as u64,
        )),
    }
}

/// The k standing patterns a replay registers, in registration order.
fn replay_patterns(args: &Args, interner: &LabelInterner) -> Vec<PatternGraph> {
    (0..args.patterns)
        .map(|i| {
            generate_pattern(
                &PatternConfig {
                    nodes: args.pattern_nodes,
                    edges: args.pattern_nodes,
                    bound_range: (1, 3),
                    seed: args.seed + i as u64,
                },
                interner,
            )
        })
        .collect()
}

/// The continuous-query mode: k standing patterns over a stream of
/// data-update batches, per-tick per-pattern deltas — on one
/// `GpnmService`, or (with `--shards`) on a `GpnmCluster` whose ticks fan
/// out across the shards in parallel. Both run the *same*
/// [`PatternHost`]-generic register + tick loop ([`replay_register`] /
/// [`replay_ticks`]); `--shards` only changes which host is built and
/// which footprint lines print around it.
fn run_replay(args: &Args) -> Result<(), String> {
    let t = std::time::Instant::now();
    let (graph, mut interner) = generate_social_graph(&SocialGraphConfig {
        nodes: args.nodes,
        edges: args.edges,
        labels: args.labels,
        communities: args.labels,
        seed: args.seed,
        ..Default::default()
    });
    println!(
        "generated {} nodes / {} edges in {:?}",
        graph.node_count(),
        graph.edge_count(),
        t.elapsed()
    );
    let trace_chunks: Option<Vec<String>> = match &args.trace {
        Some(path) => Some(parse_trace_chunks(path)?),
        None => None,
    };

    // Span collection is opt-in: without a collector the instrumentation
    // in the tick pipeline stays on the disabled fast path.
    let collector = (args.trace_summary || args.trace_out.is_some())
        .then(ua_gpnm::telemetry::install_collector);
    let result = match args.shards {
        Some(shards) => run_replay_cluster(args, graph, &mut interner, trace_chunks, shards),
        None => run_replay_service(args, graph, &mut interner, trace_chunks),
    };
    if collector.is_some() {
        ua_gpnm::telemetry::uninstall_collector();
    }
    result?;

    if let Some(collector) = collector {
        let trace = collector.finish();
        if args.trace_summary {
            println!("{}", trace.summary_table());
        }
        if let Some(path) = &args.trace_out {
            std::fs::write(path, trace.chrome_json())
                .map_err(|e| format!("cannot write --trace-out {path}: {e}"))?;
            println!(
                "wrote Chrome trace-event JSON to {path} (load in chrome://tracing or Perfetto)"
            );
        }
    }
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, ua_gpnm::telemetry::metrics_text())
            .map_err(|e| format!("cannot write --metrics-out {path}: {e}"))?;
        println!("wrote Prometheus text metrics to {path}");
    }
    Ok(())
}

/// Register the replay's standing patterns on any [`PatternHost`],
/// printing one line per registration.
fn replay_register<H: PatternHost>(
    host: &mut H,
    args: &Args,
    interner: &LabelInterner,
) -> Result<(), String> {
    for pattern in replay_patterns(args, interner) {
        let t = std::time::Instant::now();
        let handle = host
            .register_pattern(pattern, MatchSemantics::Simulation)
            .map_err(|e| e.to_string())?;
        println!(
            "registered {handle}: {} matches in {:?}",
            host.result(handle)
                .map_err(|e| e.to_string())?
                .total_matches(),
            t.elapsed()
        );
    }
    Ok(())
}

/// Stream the replay's ticks through any [`PatternHost`], printing the
/// per-tick summary, per-pattern delta lines, and (with `--stats`) the
/// host's stats rendering. With `--subscribe`, each pattern's deltas are
/// additionally consumed through the subscription API and cross-checked:
/// the stream folded over the pre-tick [`ReadView`] must reconstruct the
/// final published view exactly.
fn replay_ticks<H: PatternHost>(
    host: &mut H,
    args: &Args,
    interner: &mut LabelInterner,
    trace_chunks: Option<Vec<String>>,
) -> Result<(), String> {
    use std::io::Write as _;
    let mut json_out = match &args.stats_json {
        Some(path) => Some(
            std::fs::File::create(path)
                .map_err(|e| format!("cannot create --stats-json {path}: {e}"))?,
        ),
        None => None,
    };

    // Subscribe before the first tick so the streams are gap-free from
    // the base views down.
    let mut streams: Vec<(H::Handle, Subscription, MatchResult)> = Vec::new();
    if args.subscribe {
        for handle in host.handles() {
            let base = host.read_view(handle).map_err(|e| e.to_string())?;
            let sub = host.subscribe(handle).map_err(|e| e.to_string())?;
            streams.push((handle, sub, base.result.clone()));
        }
    }

    let ticks = trace_chunks.as_ref().map_or(args.ticks, Vec::len);
    let protocol = UpdateProtocol::from_scale(0, args.updates);
    for tick in 0..ticks {
        let batch = tick_batch(args, &trace_chunks, tick, host.graph(), interner, &protocol)?;
        let report = host.apply(&batch).map_err(|e| e.to_string())?;
        println!("{}", report.summary());
        for (handle, delta) in report.deltas() {
            println!(
                "  {handle}: +{} -{} (v{})",
                delta.added.len(),
                delta.removed.len(),
                delta.result_version
            );
        }
        if args.stats {
            println!("{}", report.render_stats());
        }
        if let Some(out) = &mut json_out {
            writeln!(out, "{}", report.stats_json())
                .map_err(|e| format!("cannot write --stats-json: {e}"))?;
        }
    }

    for (handle, sub, mut folded) in streams {
        let mut events = 0usize;
        while let Some(event) = sub.try_recv() {
            match event {
                SubEvent::Delta(delta) => {
                    folded = delta.apply_to(&folded);
                    events += 1;
                }
                SubEvent::Lagged {
                    missed_versions,
                    delta,
                } => {
                    println!("  {handle}: lagged — {missed_versions} ticks coalesced into one");
                    folded = delta.apply_to(&folded);
                    events += 1;
                }
                SubEvent::Closed => break,
            }
        }
        let live = host.read_view(handle).map_err(|e| e.to_string())?;
        if folded == live.result {
            println!(
                "subscription {handle}: {events} events reconstruct the live view (v{}, {} matches)",
                live.result_version,
                live.result.total_matches(),
            );
        } else {
            return Err(format!(
                "subscription {handle}: folded stream diverges from the live view (v{})",
                live.result_version
            ));
        }
    }
    Ok(())
}

fn run_replay_service(
    args: &Args,
    graph: DataGraph,
    interner: &mut LabelInterner,
    trace_chunks: Option<Vec<String>>,
) -> Result<(), String> {
    // The builder is the fallible construction path: a dense backend on a
    // 100k-node graph comes back as a typed refusal, not an OOM kill.
    if args.rebalance_every.is_some() {
        return Err(
            "--rebalance-every needs --shards (rebalancing moves patterns between \
                    shards)"
                .to_owned(),
        );
    }
    let mut builder = GpnmService::builder()
        .backend(args.backend)
        .max_index_gb(args.max_index_gb)
        .refresh_threads(args.threads)
        .adaptive(args.adaptive);
    if let Some(mb) = args.cache_budget_mb {
        builder = builder.cache_budget_mb(mb);
    }
    let mut service = builder.build(graph).map_err(|e| e.to_string())?;

    replay_register(&mut service, args, interner)?;
    println!(
        "union requirements: {} labels, depth {}; index: {} rows resident, {:.1} MiB ({})",
        service.requirements().labels().len(),
        service.requirements().depth(),
        service.backend().resident_rows(),
        service.backend().mem_bytes() as f64 / (1u64 << 20) as f64,
        service.backend().kind(),
    );

    replay_ticks(&mut service, args, interner, trace_chunks)?;
    println!(
        "final: {} nodes / {} edges, index {} rows resident, {:.1} MiB",
        service.graph().node_count(),
        service.graph().edge_count(),
        service.backend().resident_rows(),
        service.backend().mem_bytes() as f64 / (1u64 << 20) as f64,
    );
    Ok(())
}

fn run_replay_cluster(
    args: &Args,
    graph: DataGraph,
    interner: &mut LabelInterner,
    trace_chunks: Option<Vec<String>>,
    shards: usize,
) -> Result<(), String> {
    let mut builder = GpnmCluster::builder()
        .shards(shards)
        .backend(args.backend)
        .max_index_gb(args.max_index_gb)
        .refresh_threads(args.threads)
        .adaptive(args.adaptive);
    if let Some(n) = args.rebalance_every {
        builder = builder.rebalance_every(n);
    }
    if let Some(mb) = args.cache_budget_mb {
        builder = builder.cache_budget_mb(mb);
    }
    let builder = match args.placement {
        PlacementKind::RoundRobin => builder.placement(RoundRobin::new()),
        PlacementKind::LeastLoaded => builder.placement(LeastLoaded::new()),
    };
    let mut cluster = builder.build(graph).map_err(|e| e.to_string())?;

    replay_register(&mut cluster, args, interner)?;
    for (i, shard) in cluster.shards().iter().enumerate() {
        println!(
            "shard {i}: {} patterns, {} labels, depth {}, {} rows resident, {:.1} MiB ({})",
            shard.pattern_count(),
            shard.requirements().labels().len(),
            shard.requirements().depth(),
            shard.backend().resident_rows(),
            shard.backend().mem_bytes() as f64 / (1u64 << 20) as f64,
            shard.backend().kind(),
        );
    }
    println!(
        "cluster total: {} rows resident, {:.1} MiB across {} shards (refresh_threads={})",
        cluster.total_resident_rows(),
        cluster.total_index_bytes() as f64 / (1u64 << 20) as f64,
        cluster.shard_count(),
        args.threads,
    );

    replay_ticks(&mut cluster, args, interner, trace_chunks)?;
    println!(
        "final: {} nodes / {} edges, cluster index {} rows resident, {:.1} MiB",
        cluster.graph().node_count(),
        cluster.graph().edge_count(),
        cluster.total_resident_rows(),
        cluster.total_index_bytes() as f64 / (1u64 << 20) as f64,
    );
    Ok(())
}

fn cmd_match(path: &str, args: &Args) -> Result<(), String> {
    let (graph, interner) = load(path, args)?;
    guard_dense_build(args.backend, graph.slot_count(), args.max_index_gb)?;
    match args.backend {
        BackendKind::Dense => run_match::<IncrementalIndex>(graph, &interner, args),
        BackendKind::Partitioned => run_match::<PartitionedBackend>(graph, &interner, args),
        BackendKind::Sparse => run_match::<SparseIndex>(graph, &interner, args),
        BackendKind::Paged => run_match::<PagedIndex>(graph, &interner, args),
    }
}

fn cmd_bench(path: &str, args: &Args) -> Result<(), String> {
    let (graph, interner) = load(path, args)?;
    guard_dense_build(args.backend, graph.slot_count(), args.max_index_gb)?;
    match args.backend {
        BackendKind::Dense => run_bench::<IncrementalIndex>(graph, &interner, args),
        BackendKind::Partitioned => run_bench::<PartitionedBackend>(graph, &interner, args),
        BackendKind::Sparse => run_bench::<SparseIndex>(graph, &interner, args),
        BackendKind::Paged => run_bench::<PagedIndex>(graph, &interner, args),
    }
}

fn cmd_smoke(args: &Args) -> Result<(), String> {
    guard_dense_build(args.backend, args.nodes, args.max_index_gb)?;
    match args.backend {
        BackendKind::Dense => run_smoke::<IncrementalIndex>(args, |_| {}),
        BackendKind::Partitioned => run_smoke::<PartitionedBackend>(args, |_| {}),
        BackendKind::Sparse => run_smoke::<SparseIndex>(args, |_| {}),
        BackendKind::Paged => run_smoke::<PagedIndex>(args, |b| {
            if let Some(mb) = args.cache_budget_mb {
                b.set_cache_budget((mb * (1u64 << 20) as f64) as usize);
            }
        }),
    }
}

fn cmd_demo() {
    let fig = ua_gpnm::graph::paper::fig1();
    let reverse: std::collections::HashMap<NodeId, String> =
        fig.names.iter().map(|(k, &v)| (v, k.clone())).collect();
    let mut engine = GpnmEngine::new(fig.graph, fig.pattern, MatchSemantics::Simulation);
    engine.initial_query();
    println!(
        "{}",
        render_match_table(engine.pattern(), engine.result(), &fig.interner, |n| {
            reverse[&n].clone()
        })
    );
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.split_first() {
        Some((cmd, _rest)) if cmd == "demo" => {
            cmd_demo();
            Ok(())
        }
        Some((cmd, rest)) if cmd == "match" && !rest.is_empty() => {
            match parse_flags(&rest[1..], BackendKind::Partitioned, Cmd::FromFile) {
                Ok(args) => cmd_match(&rest[0], &args),
                Err(e) => Err(e),
            }
        }
        Some((cmd, rest)) if cmd == "bench" && !rest.is_empty() => {
            match parse_flags(&rest[1..], BackendKind::Partitioned, Cmd::FromFile) {
                Ok(args) => cmd_bench(&rest[0], &args),
                Err(e) => Err(e),
            }
        }
        Some((cmd, rest)) if cmd == "smoke" => {
            match parse_flags(rest, BackendKind::Sparse, Cmd::Smoke) {
                Ok(args) => cmd_smoke(&args),
                Err(e) => Err(e),
            }
        }
        Some((cmd, rest)) if cmd == "replay" => {
            match parse_flags(rest, BackendKind::Sparse, Cmd::Replay) {
                Ok(args) => run_replay(&args),
                Err(e) => Err(e),
            }
        }
        _ => Err(
            "usage: gpnm demo | gpnm match <edge-list> [flags] | gpnm bench <edge-list> [flags] \
             | gpnm smoke [flags] | gpnm replay [flags]\n\
             flags: --backend dense|partitioned|sparse|paged --max-index-gb G\n\
             \x20      --cache-budget-mb M (smoke/replay, paged backend)\n\
             \x20      --labels N --pattern-nodes N --updates N --seed S\n\
             \x20      --nodes N --edges M (smoke/replay only)\n\
             \x20      --patterns K --ticks T --trace FILE (replay only)\n\
             \x20      --shards K --threads T --stats --stats-json FILE --subscribe (replay only)\n\
             \x20      --placement round-robin|least-loaded (replay only)\n\
             \x20      --adaptive --rebalance-every N (replay only; rebalance needs --shards)\n\
             \x20      --trace-summary --trace-out FILE --metrics-out FILE (replay only)"
                .to_owned(),
        ),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
