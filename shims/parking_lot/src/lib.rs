//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! exact subset of `parking_lot` the workspace uses — a [`Mutex`] whose
//! `lock` does not return a poison `Result` — implemented on top of
//! `std::sync::Mutex`. Poisoning is deliberately swallowed: a panicking
//! worker thread already aborts the surrounding `scope`, matching
//! `parking_lot`'s no-poisoning semantics closely enough for this codebase.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::Mutex as StdMutex;

/// Guard returned by [`Mutex::lock`]; identical to the std guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    ///
    /// Unlike `std`, never returns a poison error: a poisoned lock is
    /// recovered, mirroring `parking_lot`'s lack of poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        m.lock().extend([2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
