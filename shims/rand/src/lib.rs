//! Offline stand-in for the `rand` crate (0.8 API shape).
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of `rand` the workspace uses: `StdRng::seed_from_u64`,
//! `Rng::gen_range` over integer `Range`/`RangeInclusive`, and
//! `Rng::gen_bool`. The generator is xoshiro256++ seeded via SplitMix64 —
//! not `rand`'s ChaCha12, so streams differ from upstream `StdRng`, but all
//! workspace uses are seeded synthetic-workload generation where only
//! determinism per seed matters, not a particular stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges an integer can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draw one sample using `rng`.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Two's-complement wrapping keeps this correct for signed
                // ranges (e.g. -5..5 spans 10) and full-width spans.
                let span = (self.end as u128).wrapping_sub(self.start as u128) & SPAN_MASK;
                self.start.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as u128).wrapping_sub(lo as u128) & SPAN_MASK) + 1;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

/// Mask reducing a wrapped `u128` difference to the 64 bits that matter.
const SPAN_MASK: u128 = u64::MAX as u128;

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` (`span > 0`), by widening rejection-free
/// multiply-shift (Lemire); span ≤ 2^64 here so one u64 draw suffices.
fn uniform_u128<G: RngCore + ?Sized>(rng: &mut G, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= 1 << 64);
    if span == 1 << 64 {
        return rng.next_u64() as u128;
    }
    (u128::from(rng.next_u64()) * span) >> 64
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17u8);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
