//! Scheduler-aware threads.
//!
//! Under a model, [`spawn`] registers a controlled thread with the active
//! scheduler: the OS thread it creates parks immediately and only runs when
//! the scheduler hands it the token, so controlled code stays serialized.
//! Outside a model, these are thin wrappers over `std::thread`.

use crate::sched::{self, thread_panicked};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

/// Handle to a spawned thread; mirrors `std::thread::JoinHandle`.
#[derive(Debug)]
pub struct JoinHandle<T> {
    /// Model-mode: the controlled thread id and its result slot.
    model: Option<(usize, Arc<StdMutex<Option<T>>>)>,
    /// Non-model mode: the real handle.
    std_handle: Option<std::thread::JoinHandle<T>>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its value. In model mode the
    /// join is a scheduler-visible blocking point.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        if let Some(h) = self.std_handle {
            return h.join();
        }
        let (tid, slot) = self.model.expect("join handle in neither mode");
        let (sched, me) = sched::current()
            .expect("loom shim: model thread handles must be joined from inside the model");
        sched.join_thread(me, tid);
        let v = match slot.lock() {
            Ok(mut g) => g.take(),
            Err(p) => p.into_inner().take(),
        };
        Ok(v.expect("loom shim: joined thread finished without a result"))
    }
}

/// Spawn a thread; mirrors `std::thread::spawn`. A decision point under a
/// model (the child may be scheduled before the parent continues).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn_named("loom-worker", f)
}

/// [`spawn`] with an OS thread name (the name plays no role in scheduling).
pub fn spawn_named<F, T>(name: &str, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if let Some((sched, me)) = sched::current() {
        let tid = sched.register_thread();
        let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
        let slot2 = Arc::clone(&slot);
        let sched2 = Arc::clone(&sched);
        let os = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || {
                sched::set_current(Some((Arc::clone(&sched2), tid)));
                let body = catch_unwind(AssertUnwindSafe(|| {
                    sched2.thread_started(tid);
                    let v = f();
                    match slot2.lock() {
                        Ok(mut g) => *g = Some(v),
                        Err(p) => *p.into_inner() = Some(v),
                    }
                    sched2.thread_finished(tid);
                }));
                if let Err(payload) = body {
                    thread_panicked(&sched2, tid, payload);
                }
                sched::set_current(None);
            })
            .expect("loom shim: failed to spawn model OS thread");
        sched.add_os_handle(os);
        // The child is registered and parked; give the scheduler a chance to
        // run it before the parent proceeds.
        sched.point(me);
        JoinHandle {
            model: Some((tid, slot)),
            std_handle: None,
        }
    } else {
        let h = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(f)
            .expect("failed to spawn thread");
        JoinHandle {
            model: None,
            std_handle: Some(h),
        }
    }
}

/// Yield the current thread. Under a model the thread steps aside until some
/// other thread has taken a turn (this is what keeps spin-wait loops from
/// livelocking the explorer).
pub fn yield_now() {
    if let Some((sched, me)) = sched::current() {
        sched.yield_now(me);
    } else {
        std::thread::yield_now();
    }
}
