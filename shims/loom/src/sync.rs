//! Scheduler-aware drop-ins for `std::sync` types.
//!
//! Every type here is dual-mode: inside [`crate::model`] each operation is a
//! scheduling decision point; outside a model it delegates straight to the
//! `std` primitive it wraps. Atomics store their values in real `std`
//! atomics (the shim contains no `unsafe`), so the checker explores
//! *interleavings* under sequential consistency rather than C11 weak-memory
//! reorderings — see the crate docs for the full list of deliberate gaps.

use crate::sched::{self, Scheduler};
use std::sync::Arc as StdArc;
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

pub use std::sync::Arc;
pub use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

/// Scheduling decision point if the calling thread is controlled by a model.
fn maybe_point() {
    if let Some((sched, me)) = sched::current() {
        sched.point(me);
    }
}

fn addr_id<T: ?Sized>(r: &T) -> u64 {
    (r as *const T).cast::<u8>() as usize as u64
}

/// Model-checked atomics mirroring `std::sync::atomic`.
pub mod atomic {
    use super::maybe_point;
    pub use std::sync::atomic::Ordering;

    /// An atomic fence; a scheduling decision point under a model.
    pub fn fence(order: Ordering) {
        maybe_point();
        std::sync::atomic::fence(order);
    }

    macro_rules! atomic_common {
        ($name:ident, $std:path, $val:ty) => {
            /// Model-checked counterpart of the same-named `std` atomic.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Create a new atomic (usable in `static` initializers).
                pub const fn new(v: $val) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                /// Atomic load; a decision point under a model.
                pub fn load(&self, order: Ordering) -> $val {
                    maybe_point();
                    self.inner.load(order)
                }

                /// Atomic store; a decision point under a model.
                pub fn store(&self, v: $val, order: Ordering) {
                    maybe_point();
                    self.inner.store(v, order);
                }

                /// Atomic swap; a decision point under a model.
                pub fn swap(&self, v: $val, order: Ordering) -> $val {
                    maybe_point();
                    self.inner.swap(v, order)
                }

                /// Atomic compare-exchange; a decision point under a model.
                pub fn compare_exchange(
                    &self,
                    current: $val,
                    new: $val,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$val, $val> {
                    maybe_point();
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Atomic weak compare-exchange; a decision point under a
                /// model (the shim never fails it spuriously).
                pub fn compare_exchange_weak(
                    &self,
                    current: $val,
                    new: $val,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$val, $val> {
                    maybe_point();
                    self.inner
                        .compare_exchange_weak(current, new, success, failure)
                }

                /// Exclusive-access read/write; never a decision point
                /// (`&mut self` proves no concurrent access).
                pub fn get_mut(&mut self) -> &mut $val {
                    self.inner.get_mut()
                }

                /// Consume the atomic; never a decision point.
                pub fn into_inner(self) -> $val {
                    self.inner.into_inner()
                }
            }
        };
    }

    macro_rules! atomic_int_ops {
        ($name:ident, $val:ty) => {
            impl $name {
                /// Atomic add; a decision point under a model.
                pub fn fetch_add(&self, v: $val, order: Ordering) -> $val {
                    maybe_point();
                    self.inner.fetch_add(v, order)
                }

                /// Atomic subtract; a decision point under a model.
                pub fn fetch_sub(&self, v: $val, order: Ordering) -> $val {
                    maybe_point();
                    self.inner.fetch_sub(v, order)
                }

                /// Atomic max; a decision point under a model.
                pub fn fetch_max(&self, v: $val, order: Ordering) -> $val {
                    maybe_point();
                    self.inner.fetch_max(v, order)
                }
            }
        };
    }

    atomic_common!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    atomic_common!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    atomic_common!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    atomic_common!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    atomic_int_ops!(AtomicUsize, usize);
    atomic_int_ops!(AtomicU64, u64);
    atomic_int_ops!(AtomicU32, u32);

    impl AtomicBool {
        /// Atomic or; a decision point under a model.
        pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
            maybe_point();
            self.inner.fetch_or(v, order)
        }
    }

    /// Model-checked counterpart of `std::sync::atomic::AtomicPtr`.
    #[derive(Debug)]
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        /// Create a new atomic pointer.
        pub const fn new(p: *mut T) -> Self {
            Self {
                inner: std::sync::atomic::AtomicPtr::new(p),
            }
        }

        /// Atomic load; a decision point under a model.
        pub fn load(&self, order: Ordering) -> *mut T {
            maybe_point();
            self.inner.load(order)
        }

        /// Atomic store; a decision point under a model.
        pub fn store(&self, p: *mut T, order: Ordering) {
            maybe_point();
            self.inner.store(p, order);
        }

        /// Atomic swap; a decision point under a model.
        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            maybe_point();
            self.inner.swap(p, order)
        }

        /// Atomic compare-exchange; a decision point under a model.
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            maybe_point();
            self.inner.compare_exchange(current, new, success, failure)
        }

        /// Exclusive-access read/write; never a decision point.
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.inner.get_mut()
        }

        /// Consume the atomic; never a decision point.
        pub fn into_inner(self) -> *mut T {
            self.inner.into_inner()
        }
    }

    impl Default for AtomicPtr<()> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }
}

type Model = (StdArc<Scheduler>, usize);

// ---- Mutex ----------------------------------------------------------------

/// Model-checked counterpart of `std::sync::Mutex`.
///
/// Under a model the lock state lives in the scheduler (keyed by object
/// address), so acquisition order is explored exhaustively; the inner `std`
/// mutex only carries the data and is taken with `try_lock` once logical
/// ownership is granted. The shim never poisons, but signatures keep the
/// `std` `LockResult` shape so call sites compile unchanged in both modes.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: StdMutex::new(t),
        }
    }

    /// Consume the mutex, returning the data.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn id(&self) -> u64 {
        addr_id(&self.inner)
    }

    /// Acquire the lock, blocking (in model mode: a decision point, then a
    /// scheduler-visible blocking acquire).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some((sched, me)) = sched::current() {
            sched.mutex_lock(me, self.id());
            let inner = self
                .inner
                .try_lock()
                .expect("loom shim: logical mutex owner could not take the inner lock");
            Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
                model: Some((sched, me)),
            })
        } else {
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            }
        }
    }

    /// Attempt the lock without blocking; a decision point under a model.
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        if let Some((sched, me)) = sched::current() {
            if sched.try_mutex_lock(me, self.id()) {
                let inner = self
                    .inner
                    .try_lock()
                    .expect("loom shim: logical mutex owner could not take the inner lock");
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: Some((sched, me)),
                })
            } else {
                Err(TryLockError::WouldBlock)
            }
        } else {
            match self.inner.try_lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                Err(TryLockError::Poisoned(p)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                        lock: self,
                        inner: Some(p.into_inner()),
                        model: None,
                    })))
                }
            }
        }
    }

    /// Exclusive-access read/write; never a decision point.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

/// RAII guard for [`Mutex`]; releasing it is a decision point under a model.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    model: Option<Model>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data lock before the logical release: the scheduler
        // may hand the token to a waiter inside `mutex_unlock`, and that
        // waiter immediately try-locks the inner mutex.
        self.inner = None;
        if let Some((sched, me)) = self.model.take() {
            sched.mutex_unlock(me, self.lock.id());
        }
    }
}

// ---- Condvar --------------------------------------------------------------

/// Result of a timed condvar wait. `std`'s equivalent has no public
/// constructor, so the shim defines its own; under a model a "timed" wait
/// never times out (time is not modeled).
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Model-checked counterpart of `std::sync::Condvar`.
///
/// `notify_one` deliberately wakes *all* model waiters: every waiter
/// re-checks its predicate under the mutex (required anyway for spurious
/// wakeups), and waking a superset keeps exploration exhaustive over which
/// waiter wins the race.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    fn id(&self) -> u64 {
        addr_id(&self.inner)
    }

    /// Release the guard's mutex, park until notified, re-acquire.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if let Some((sched, me)) = guard.model.take() {
            let lock = guard.lock;
            // Drop the inner guard before the logical release inside
            // `condvar_wait` (same ordering rule as MutexGuard::drop);
            // `model` is already taken so this drop is release-silent.
            guard.inner = None;
            drop(guard);
            sched.condvar_wait(me, self.id(), lock.id());
            let inner = lock
                .inner
                .try_lock()
                .expect("loom shim: logical mutex owner could not take the inner lock");
            Ok(MutexGuard {
                lock,
                inner: Some(inner),
                model: Some((sched, me)),
            })
        } else {
            let lock = guard.lock;
            let inner = guard.inner.take().expect("guard accessed after release");
            std::mem::forget(guard);
            match self.inner.wait(inner) {
                Ok(g) => Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            }
        }
    }

    /// Timed wait. Under a model this is a plain [`Condvar::wait`] that
    /// reports "not timed out" (model time does not advance).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if guard.model.is_some() {
            match self.wait(guard) {
                Ok(g) => Ok((g, WaitTimeoutResult { timed_out: false })),
                Err(p) => {
                    let g = p.into_inner();
                    Err(PoisonError::new((
                        g,
                        WaitTimeoutResult { timed_out: false },
                    )))
                }
            }
        } else {
            let lock = guard.lock;
            let mut guard = guard;
            let inner = guard.inner.take().expect("guard accessed after release");
            std::mem::forget(guard);
            match self.inner.wait_timeout(inner, dur) {
                Ok((g, t)) => Ok((
                    MutexGuard {
                        lock,
                        inner: Some(g),
                        model: None,
                    },
                    WaitTimeoutResult {
                        timed_out: t.timed_out(),
                    },
                )),
                Err(p) => {
                    let (g, t) = p.into_inner();
                    Err(PoisonError::new((
                        MutexGuard {
                            lock,
                            inner: Some(g),
                            model: None,
                        },
                        WaitTimeoutResult {
                            timed_out: t.timed_out(),
                        },
                    )))
                }
            }
        }
    }

    /// Wake one waiter (under a model: all waiters — see the type docs).
    pub fn notify_one(&self) {
        if let Some((sched, me)) = sched::current() {
            sched.condvar_notify_all(me, self.id());
        } else {
            self.inner.notify_one();
        }
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        if let Some((sched, me)) = sched::current() {
            sched.condvar_notify_all(me, self.id());
        } else {
            self.inner.notify_all();
        }
    }
}

// ---- RwLock ---------------------------------------------------------------

/// Model-checked counterpart of `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(t: T) -> Self {
        RwLock {
            inner: StdRwLock::new(t),
        }
    }

    /// Consume the lock, returning the data.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn id(&self) -> u64 {
        addr_id(&self.inner)
    }

    /// Acquire a shared read lock.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if let Some((sched, me)) = sched::current() {
            sched.rw_read_lock(me, self.id());
            let inner = self
                .inner
                .try_read()
                .expect("loom shim: logical read-lock holder could not take the inner lock");
            Ok(RwLockReadGuard {
                lock: self,
                inner: Some(inner),
                model: Some((sched, me)),
            })
        } else {
            match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(RwLockReadGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            }
        }
    }

    /// Attempt a shared read lock without blocking; a decision point under a
    /// model.
    pub fn try_read(&self) -> TryLockResult<RwLockReadGuard<'_, T>> {
        if let Some((sched, me)) = sched::current() {
            if sched.try_rw_read_lock(me, self.id()) {
                let inner = self
                    .inner
                    .try_read()
                    .expect("loom shim: logical read-lock holder could not take the inner lock");
                Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(inner),
                    model: Some((sched, me)),
                })
            } else {
                Err(TryLockError::WouldBlock)
            }
        } else {
            match self.inner.try_read() {
                Ok(g) => Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                Err(TryLockError::Poisoned(p)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(RwLockReadGuard {
                        lock: self,
                        inner: Some(p.into_inner()),
                        model: None,
                    })))
                }
            }
        }
    }

    /// Acquire the exclusive write lock.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if let Some((sched, me)) = sched::current() {
            sched.rw_write_lock(me, self.id());
            let inner = self
                .inner
                .try_write()
                .expect("loom shim: logical write-lock holder could not take the inner lock");
            Ok(RwLockWriteGuard {
                lock: self,
                inner: Some(inner),
                model: Some((sched, me)),
            })
        } else {
            match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            }
        }
    }

    /// Exclusive-access read/write; never a decision point.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

/// RAII shared-read guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockReadGuard<'a, T>>,
    model: Option<Model>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some((sched, me)) = self.model.take() {
            sched.rw_read_unlock(me, self.lock.id());
        }
    }
}

/// RAII exclusive-write guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockWriteGuard<'a, T>>,
    model: Option<Model>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some((sched, me)) = self.model.take() {
            sched.rw_write_unlock(me, self.lock.id());
        }
    }
}
