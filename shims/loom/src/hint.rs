//! Spin-loop hint, routed through the scheduler.

/// Equivalent of `std::hint::spin_loop`. Under a model this is a yield:
/// a spinning thread must let other threads run, otherwise the explorer
/// would unfold the spin forever.
pub fn spin_loop() {
    crate::thread::yield_now();
}
