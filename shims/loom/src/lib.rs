//! Offline stand-in for the [`loom`](https://docs.rs/loom) model checker.
//!
//! The build environment has no registry access, so this crate re-implements
//! the subset of loom's API that the workspace needs, backed by a
//! deterministic bounded-exhaustive scheduler. Controlled code runs on real
//! OS threads, but a token-passing scheduler serializes them so that exactly
//! one controlled thread runs at a time; every instrumented operation
//! (atomic access, lock acquire/release, condvar wait/notify, spawn/join,
//! yield) is a *decision point* where the scheduler may switch threads. A
//! depth-first search over those decisions replays the test body once per
//! distinct schedule until the (bounded) schedule space is exhausted.
//!
//! # Implemented API subset
//!
//! - [`model`] / [`model_with`] — run a closure under every explored schedule.
//! - [`sync::atomic`]: `AtomicBool`, `AtomicUsize`, `AtomicU64`, `AtomicPtr`,
//!   plus `Ordering` and `fence`. Atomics wrap their `std` counterparts, so
//!   there is no `unsafe` here; the shim explores *interleavings* under
//!   sequential consistency and does not model C11 weak-memory reorderings
//!   (real loom does; this is the documented gap).
//! - [`sync`]: `Arc` (a plain re-export of `std::sync::Arc`), plus
//!   scheduler-aware `Mutex`, `RwLock`, and `Condvar` with `std`-shaped
//!   poisoning signatures (the shim never actually poisons).
//! - [`thread`]: `spawn`, `spawn_named`, `yield_now`, `JoinHandle`.
//! - [`hint::spin_loop`] — treated as a yield so spin-wait loops cannot
//!   livelock the explorer.
//!
//! All types are *dual mode*: outside [`model`] they delegate directly to
//! `std` with no scheduling, so a crate compiled with `--cfg gpnm_loom` still
//! runs its ordinary tests correctly.
//!
//! # Exploration bounds
//!
//! Mirroring the `PROPTEST_CASES` env-knob precedent of `shims/proptest`:
//!
//! - `LOOM_MAX_PREEMPTIONS` (default 2) — maximum *involuntary* context
//!   switches per execution (CHESS-style preemption bounding). Switches at
//!   blocking points are free; forced switches do not count.
//! - `LOOM_MAX_BRANCHES` (default 5 000) — maximum decision points in one
//!   execution; exceeding it fails the model (runaway loop guard).
//! - `LOOM_MAX_ITERATIONS` (default 500 000) — maximum executions; exceeding
//!   it fails the model loudly rather than silently truncating coverage.
//! - `LOOM_LOG` (set to `1`) — print the number of explored interleavings.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod sched;

pub mod hint;
pub mod sync;
pub mod thread;

pub use sched::{model, model_with, Config};
