//! Deterministic token-passing scheduler with preemption-bounded DFS replay.
//!
//! One [`Scheduler`] lives for one *execution* of the model closure. All
//! controlled threads share it; exactly one thread holds the "token"
//! (`Sched::active`) at any time, so controlled code is fully serialized.
//! Every instrumented operation calls into the scheduler, which records a
//! [`Choice`] (the set of runnable threads and which one was picked) and
//! either continues the current thread or hands the token to another.
//!
//! Between executions, [`model_with`] computes the next schedule to try by
//! scanning the recorded choices backwards for the deepest decision with an
//! unexplored alternative (classic DFS over schedules), then replays that
//! prefix. Exploration terminates when no decision has an untried
//! alternative.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Hard cap on controlled threads per execution; model tests are supposed to
/// be tiny (2–3 threads), so hitting this indicates a runaway spawn loop.
const MAX_THREADS: usize = 16;

/// Exploration bounds for [`model_with`]. Defaults come from the
/// `LOOM_MAX_PREEMPTIONS` / `LOOM_MAX_BRANCHES` / `LOOM_MAX_ITERATIONS`
/// environment knobs (see the crate docs).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Maximum involuntary context switches per execution (CHESS-style
    /// preemption bound). Forced switches at blocking points are free.
    pub max_preemptions: usize,
    /// Maximum decision points in a single execution.
    pub max_branches: usize,
    /// Maximum executions before the model fails loudly.
    pub max_iterations: usize,
    /// Print the number of explored interleavings when done.
    pub log: bool,
}

impl Config {
    /// Read the exploration bounds from the environment, falling back to the
    /// documented defaults.
    pub fn from_env() -> Self {
        fn env_usize(name: &str, default: usize) -> usize {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(default)
        }
        Config {
            max_preemptions: env_usize("LOOM_MAX_PREEMPTIONS", 2),
            max_branches: env_usize("LOOM_MAX_BRANCHES", 5_000),
            max_iterations: env_usize("LOOM_MAX_ITERATIONS", 500_000),
            log: std::env::var("LOOM_LOG").is_ok_and(|v| v == "1"),
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::from_env()
    }
}

/// Panic payload used to unwind controlled threads once an execution has
/// failed; recognized (and silenced) by the thread wrappers and panic hook.
pub(crate) struct ModelAbort;

/// What a controlled thread is blocked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    /// Waiting to acquire the mutex with this resource id.
    Mutex(u64),
    /// Waiting to acquire a read lock.
    RwRead(u64),
    /// Waiting to acquire a write lock.
    RwWrite(u64),
    /// Parked on a condvar until notified.
    Condvar(u64),
    /// Waiting for the thread with this id to finish.
    Join(usize),
    /// The model's root thread waiting for every spawned thread to finish.
    JoinAll,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Runnable,
    /// Voluntarily stepped aside; re-enabled at the next decision taken by a
    /// different thread (spin-wait de-livelocking).
    Yielded,
    Blocked(Block),
    Finished,
}

/// Shared lock/rwlock bookkeeping, keyed by object address.
#[derive(Debug, Default)]
struct ResState {
    /// Exclusive owner (mutex holder or rwlock writer).
    owner: Option<usize>,
    /// Shared reader count (rwlock only).
    readers: usize,
}

/// One recorded decision: the candidate threads (current-thread-first, so
/// index 0 is "keep running") and which index was picked this execution.
#[derive(Debug, Clone)]
struct Choice {
    choices: Vec<usize>,
    picked: usize,
}

struct Sched {
    threads: Vec<TState>,
    /// The thread currently holding the execution token.
    active: usize,
    /// Decisions recorded so far this execution.
    schedule: Vec<Choice>,
    /// Thread ids to pick at each decision, replayed from the previous
    /// execution's schedule prefix; past its end the DFS default (index 0)
    /// applies.
    replay: Vec<usize>,
    step: usize,
    preemptions: usize,
    failed: Option<String>,
    resources: HashMap<u64, ResState>,
    cfg: Config,
}

pub(crate) struct Scheduler {
    mx: StdMutex<Sched>,
    cv: StdCondvar,
    /// OS handles of spawned controlled threads, joined at execution end.
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Scheduler { .. }")
    }
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler/thread-id pair for the calling thread, if it is a controlled
/// thread of an active model execution.
pub(crate) fn current() -> Option<(Arc<Scheduler>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(v: Option<(Arc<Scheduler>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

type Guard<'a> = StdMutexGuard<'a, Sched>;

impl Scheduler {
    fn new(cfg: Config, replay: Vec<usize>) -> Self {
        Scheduler {
            mx: StdMutex::new(Sched {
                threads: vec![TState::Runnable], // tid 0 = the model root
                active: 0,
                schedule: Vec::new(),
                replay,
                step: 0,
                preemptions: 0,
                failed: None,
                resources: HashMap::new(),
                cfg,
            }),
            cv: StdCondvar::new(),
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> Guard<'_> {
        // The scheduler's own mutex is never poisoned observably: controlled
        // threads only panic via ModelAbort *outside* these critical
        // sections. Recover defensively anyway.
        match self.mx.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Record the execution as failed (first failure wins) and wake every
    /// controlled thread so it can unwind via [`ModelAbort`].
    pub(crate) fn fail(&self, msg: String) {
        let mut g = self.lock();
        if g.failed.is_none() {
            let trace = render_trace(&g.schedule);
            g.failed = Some(format!("{msg}\n  schedule so far: [{trace}]"));
        }
        self.cv.notify_all();
    }

    /// Core decision: pick which thread runs next and hand it the token.
    ///
    /// `me` is the deciding thread (the current token holder). Its own state
    /// must already reflect the operation being performed (e.g. set to
    /// `Blocked` before a blocking acquire). Panics with [`ModelAbort`] if
    /// the execution has already failed.
    fn decide(&self, g: &mut Sched, me: usize) {
        if g.failed.is_some() {
            std::panic::panic_any(ModelAbort);
        }
        // Re-enable threads that yielded, now that a decision is being taken
        // (possibly by a different thread). A thread's own yield stays in
        // force for this decision so the scheduler must pick someone else.
        for (i, t) in g.threads.iter_mut().enumerate() {
            if i != me && *t == TState::Yielded {
                *t = TState::Runnable;
            }
        }
        let mut enabled: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == TState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if g.threads[me] == TState::Yielded {
                // Everyone else is blocked/finished: the yield is moot.
                g.threads[me] = TState::Runnable;
                enabled.push(me);
            } else if g.threads.iter().all(|t| *t == TState::Finished) {
                // Last thread finishing; nothing left to schedule.
                return;
            } else {
                let stuck: Vec<String> = g
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !matches!(t, TState::Finished))
                    .map(|(i, t)| format!("thread {i}: {t:?}"))
                    .collect();
                let trace = render_trace(&g.schedule);
                g.failed = Some(format!(
                    "deadlock: no runnable thread\n  {}\n  schedule so far: [{trace}]",
                    stuck.join("\n  ")
                ));
                self.cv.notify_all();
                std::panic::panic_any(ModelAbort);
            }
        }
        if g.schedule.len() >= g.cfg.max_branches {
            let trace = render_trace(&g.schedule);
            g.failed = Some(format!(
                "exceeded LOOM_MAX_BRANCHES ({}) decision points in one execution; \
                 raise the bound or shrink the model\n  schedule so far: [{trace}]",
                g.cfg.max_branches
            ));
            self.cv.notify_all();
            std::panic::panic_any(ModelAbort);
        }
        // Current-thread-first so that choice index 0 ("the default") means
        // "keep running without a context switch".
        let me_enabled = enabled.contains(&me);
        let mut choices = Vec::with_capacity(enabled.len());
        if me_enabled {
            choices.push(me);
        }
        choices.extend(enabled.iter().copied().filter(|&t| t != me));
        // Once the preemption budget is spent, an enabled current thread
        // must keep running; switches remain free where `me` is blocked.
        if me_enabled && g.preemptions >= g.cfg.max_preemptions {
            choices.truncate(1);
        }
        let picked = if g.step < g.replay.len() {
            let want = g.replay[g.step];
            match choices.iter().position(|&t| t == want) {
                Some(i) => i,
                None => {
                    let trace = render_trace(&g.schedule);
                    g.failed = Some(format!(
                        "internal: schedule replay diverged at step {} \
                         (wanted thread {want}, candidates {choices:?}); \
                         the model closure is not deterministic\n  \
                         schedule so far: [{trace}]",
                        g.step
                    ));
                    self.cv.notify_all();
                    std::panic::panic_any(ModelAbort);
                }
            }
        } else {
            0
        };
        let next = choices[picked];
        if me_enabled && next != me {
            g.preemptions += 1;
        }
        g.schedule.push(Choice { choices, picked });
        g.step += 1;
        g.active = next;
        if next != me {
            self.cv.notify_all();
        }
    }

    /// Block until this thread holds the token (aborting if the execution
    /// failed), returning the re-acquired scheduler guard.
    fn wait_token<'a>(&'a self, mut g: Guard<'a>, me: usize) -> Guard<'a> {
        loop {
            if g.failed.is_some() {
                drop(g);
                std::panic::panic_any(ModelAbort);
            }
            if g.active == me && g.threads[me] == TState::Runnable {
                return g;
            }
            g = match self.cv.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// A plain decision point (atomic op, fence, etc.): maybe switch, then
    /// wait until this thread runs again.
    pub(crate) fn point(self: &Arc<Self>, me: usize) {
        let mut g = self.lock();
        self.decide(&mut g, me);
        let _g = self.wait_token(g, me);
    }

    // ---- mutex / rwlock -------------------------------------------------

    pub(crate) fn mutex_lock(self: &Arc<Self>, me: usize, id: u64) {
        let mut g = self.lock();
        self.decide(&mut g, me);
        g = self.wait_token(g, me);
        loop {
            let res = g.resources.entry(id).or_default();
            if res.owner.is_none() && res.readers == 0 {
                res.owner = Some(me);
                return;
            }
            g.threads[me] = TState::Blocked(Block::Mutex(id));
            self.decide(&mut g, me);
            g = self.wait_token(g, me);
        }
    }

    pub(crate) fn try_mutex_lock(self: &Arc<Self>, me: usize, id: u64) -> bool {
        let mut g = self.lock();
        self.decide(&mut g, me);
        g = self.wait_token(g, me);
        let res = g.resources.entry(id).or_default();
        if res.owner.is_none() && res.readers == 0 {
            res.owner = Some(me);
            true
        } else {
            false
        }
    }

    pub(crate) fn mutex_unlock(self: &Arc<Self>, me: usize, id: u64) {
        let mut g = self.lock();
        if g.failed.is_some() {
            // Unwinding via ModelAbort: release silently so guard drops
            // never double-panic.
            if let Some(res) = g.resources.get_mut(&id) {
                res.owner = None;
            }
            return;
        }
        if let Some(res) = g.resources.get_mut(&id) {
            res.owner = None;
        }
        Self::wake_lock_waiters(&mut g, id);
        // Releasing a lock is itself a decision point: the freshly woken
        // waiters are schedulable *now*, which is where lock-handoff races
        // live.
        self.decide(&mut g, me);
        let _g = self.wait_token(g, me);
    }

    pub(crate) fn rw_read_lock(self: &Arc<Self>, me: usize, id: u64) {
        let mut g = self.lock();
        self.decide(&mut g, me);
        g = self.wait_token(g, me);
        loop {
            let res = g.resources.entry(id).or_default();
            if res.owner.is_none() {
                res.readers += 1;
                return;
            }
            g.threads[me] = TState::Blocked(Block::RwRead(id));
            self.decide(&mut g, me);
            g = self.wait_token(g, me);
        }
    }

    pub(crate) fn try_rw_read_lock(self: &Arc<Self>, me: usize, id: u64) -> bool {
        let mut g = self.lock();
        self.decide(&mut g, me);
        g = self.wait_token(g, me);
        let res = g.resources.entry(id).or_default();
        if res.owner.is_none() {
            res.readers += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn rw_read_unlock(self: &Arc<Self>, me: usize, id: u64) {
        let mut g = self.lock();
        if g.failed.is_some() {
            if let Some(res) = g.resources.get_mut(&id) {
                res.readers = res.readers.saturating_sub(1);
            }
            return;
        }
        if let Some(res) = g.resources.get_mut(&id) {
            res.readers = res.readers.saturating_sub(1);
        }
        Self::wake_lock_waiters(&mut g, id);
        self.decide(&mut g, me);
        let _g = self.wait_token(g, me);
    }

    pub(crate) fn rw_write_lock(self: &Arc<Self>, me: usize, id: u64) {
        let mut g = self.lock();
        self.decide(&mut g, me);
        g = self.wait_token(g, me);
        loop {
            let res = g.resources.entry(id).or_default();
            if res.owner.is_none() && res.readers == 0 {
                res.owner = Some(me);
                return;
            }
            g.threads[me] = TState::Blocked(Block::RwWrite(id));
            self.decide(&mut g, me);
            g = self.wait_token(g, me);
        }
    }

    pub(crate) fn rw_write_unlock(self: &Arc<Self>, me: usize, id: u64) {
        self.mutex_unlock(me, id);
    }

    fn wake_lock_waiters(g: &mut Sched, id: u64) {
        for t in g.threads.iter_mut() {
            if matches!(
                t,
                TState::Blocked(Block::Mutex(b) | Block::RwRead(b) | Block::RwWrite(b)) if *b == id
            ) {
                *t = TState::Runnable;
            }
        }
    }

    // ---- condvar --------------------------------------------------------

    /// Atomically release mutex `mutex_id`, park on condvar `cv_id` until
    /// notified, then re-acquire the mutex.
    pub(crate) fn condvar_wait(self: &Arc<Self>, me: usize, cv_id: u64, mutex_id: u64) {
        let mut g = self.lock();
        if g.failed.is_some() {
            drop(g);
            std::panic::panic_any(ModelAbort);
        }
        if let Some(res) = g.resources.get_mut(&mutex_id) {
            res.owner = None;
        }
        Self::wake_lock_waiters(&mut g, mutex_id);
        g.threads[me] = TState::Blocked(Block::Condvar(cv_id));
        self.decide(&mut g, me);
        g = self.wait_token(g, me);
        // Notified; re-acquire the mutex (no extra decision point first —
        // being scheduled here *is* the wakeup).
        loop {
            let res = g.resources.entry(mutex_id).or_default();
            if res.owner.is_none() && res.readers == 0 {
                res.owner = Some(me);
                return;
            }
            g.threads[me] = TState::Blocked(Block::Mutex(mutex_id));
            self.decide(&mut g, me);
            g = self.wait_token(g, me);
        }
    }

    /// Wake all threads parked on `cv_id`. `notify_one` also routes here:
    /// waking more threads than a real notify is sound (every waiter
    /// re-checks its predicate under the mutex, exactly as it must for
    /// spurious wakeups), and it keeps the schedule space exhaustive over
    /// which waiter actually wins.
    pub(crate) fn condvar_notify_all(self: &Arc<Self>, me: usize, cv_id: u64) {
        let mut g = self.lock();
        if g.failed.is_some() {
            return;
        }
        for t in g.threads.iter_mut() {
            if matches!(t, TState::Blocked(Block::Condvar(b)) if *b == cv_id) {
                *t = TState::Runnable;
            }
        }
        self.decide(&mut g, me);
        let _g = self.wait_token(g, me);
    }

    // ---- threads --------------------------------------------------------

    /// Register a new controlled thread and return its id. No decision point
    /// here: the caller spawns the OS thread first (so the child can actually
    /// accept the token) and then takes a [`Scheduler::point`].
    pub(crate) fn register_thread(self: &Arc<Self>) -> usize {
        let mut g = self.lock();
        if g.failed.is_some() {
            drop(g);
            std::panic::panic_any(ModelAbort);
        }
        if g.threads.len() >= MAX_THREADS {
            let trace = render_trace(&g.schedule);
            g.failed = Some(format!(
                "model spawned more than {MAX_THREADS} threads; model tests must stay small\n  \
                 schedule so far: [{trace}]"
            ));
            self.cv.notify_all();
            drop(g);
            std::panic::panic_any(ModelAbort);
        }
        let tid = g.threads.len();
        g.threads.push(TState::Runnable);
        tid
    }

    pub(crate) fn add_os_handle(&self, h: std::thread::JoinHandle<()>) {
        match self.os_handles.lock() {
            Ok(mut v) => v.push(h),
            Err(p) => p.into_inner().push(h),
        }
    }

    /// Entry point for a freshly spawned controlled thread: park until the
    /// scheduler hands it the token for the first time.
    pub(crate) fn thread_started(self: &Arc<Self>, me: usize) {
        let g = self.lock();
        let _g = self.wait_token(g, me);
    }

    /// Mark `me` finished, wake joiners, and hand the token on. Does not
    /// wait (the OS thread exits).
    pub(crate) fn thread_finished(self: &Arc<Self>, me: usize) {
        let mut g = self.lock();
        g.threads[me] = TState::Finished;
        for t in g.threads.iter_mut() {
            if matches!(t, TState::Blocked(Block::Join(b)) if *b == me) {
                *t = TState::Runnable;
            }
        }
        Self::maybe_wake_join_all(&mut g);
        if g.failed.is_some() {
            self.cv.notify_all();
            return;
        }
        let r = catch_unwind(AssertUnwindSafe(|| self.decide(&mut g, me)));
        drop(g);
        if r.is_err() {
            // Deadlock or budget failure detected while finishing: the
            // failure is recorded; just let this thread exit.
            self.cv.notify_all();
        }
    }

    pub(crate) fn join_thread(self: &Arc<Self>, me: usize, target: usize) {
        let mut g = self.lock();
        self.decide(&mut g, me);
        g = self.wait_token(g, me);
        while g.threads[target] != TState::Finished {
            g.threads[me] = TState::Blocked(Block::Join(target));
            self.decide(&mut g, me);
            g = self.wait_token(g, me);
        }
    }

    fn maybe_wake_join_all(g: &mut Sched) {
        let all_done = g
            .threads
            .iter()
            .all(|t| matches!(t, TState::Finished | TState::Blocked(Block::JoinAll)));
        if all_done {
            for t in g.threads.iter_mut() {
                if matches!(t, TState::Blocked(Block::JoinAll)) {
                    *t = TState::Runnable;
                }
            }
        }
    }

    /// Called by the root thread after the model closure returns: wait for
    /// every spawned thread to finish so each execution is fully drained.
    fn root_drain(self: &Arc<Self>) {
        let mut g = self.lock();
        if g.failed.is_some() {
            drop(g);
            std::panic::panic_any(ModelAbort);
        }
        g.threads[0] = TState::Blocked(Block::JoinAll);
        Self::maybe_wake_join_all(&mut g);
        if g.threads[0] == TState::Runnable {
            // Everyone already finished; no decision needed.
            return;
        }
        self.decide(&mut g, 0);
        let _g = self.wait_token(g, 0);
    }

    fn join_os_threads(&self) {
        let handles = {
            let mut v = match self.os_handles.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            std::mem::take(&mut *v)
        };
        for h in handles {
            let _ = h.join();
        }
    }

    // ---- yield ----------------------------------------------------------

    pub(crate) fn yield_now(self: &Arc<Self>, me: usize) {
        let mut g = self.lock();
        g.threads[me] = TState::Yielded;
        self.decide(&mut g, me);
        let _g = self.wait_token(g, me);
    }
}

fn render_trace(schedule: &[Choice]) -> String {
    schedule
        .iter()
        .map(|c| c.choices[c.picked].to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// The deepest-alternative successor of `schedule`, or `None` when the DFS
/// is exhausted.
fn next_replay(schedule: &[Choice]) -> Option<Vec<usize>> {
    for i in (0..schedule.len()).rev() {
        let c = &schedule[i];
        if c.picked + 1 < c.choices.len() {
            let mut replay: Vec<usize> =
                schedule[..i].iter().map(|p| p.choices[p.picked]).collect();
            replay.push(c.choices[c.picked + 1]);
            return Some(replay);
        }
    }
    None
}

// Reference-counted install of a panic hook that silences ModelAbort unwinds
// (they are control flow, not failures) while forwarding real panics.
static HOOK_USERS: AtomicUsize = AtomicUsize::new(0);

struct HookGuard;

impl HookGuard {
    fn install() -> HookGuard {
        // RELAXED: the counter only gates idempotent hook installation; the
        // hook itself is set under no ordering requirement (worst case two
        // equivalent hooks race, both silence ModelAbort identically).
        if HOOK_USERS.fetch_add(1, StdOrdering::Relaxed) == 0 {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<ModelAbort>().is_none() {
                    prev(info);
                }
            }));
        }
        HookGuard
    }
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        // Deliberately never uninstall: concurrent model() calls (parallel
        // test threads) share the hook, and the replacement forwards real
        // panics, so leaving it installed is harmless.
        // RELAXED: see install().
        HOOK_USERS.fetch_sub(1, StdOrdering::Relaxed);
    }
}

/// Run `f` once per schedule until the bounded schedule space is exhausted,
/// using bounds from the environment ([`Config::from_env`]).
///
/// Panics (with the failing schedule) if any execution panics, deadlocks, or
/// exceeds a bound.
pub fn model<F>(f: F)
where
    F: Fn() + 'static,
{
    model_with(Config::from_env(), f);
}

/// [`model`] with explicit exploration bounds.
pub fn model_with<F>(cfg: Config, f: F)
where
    F: Fn() + 'static,
{
    let _hook = HookGuard::install();
    let mut replay: Vec<usize> = Vec::new();
    let mut iterations: usize = 0;
    loop {
        iterations += 1;
        if iterations > cfg.max_iterations {
            panic!(
                "loom shim: exceeded LOOM_MAX_ITERATIONS ({}) before exhausting the \
                 schedule space; raise the bound or shrink the model",
                cfg.max_iterations
            );
        }
        let sched = Arc::new(Scheduler::new(cfg, std::mem::take(&mut replay)));
        set_current(Some((sched.clone(), 0)));
        let body = catch_unwind(AssertUnwindSafe(|| {
            f();
            sched.root_drain();
        }));
        if let Err(payload) = &body {
            if payload.downcast_ref::<ModelAbort>().is_none() {
                // A genuine panic in the root thread: record it so spawned
                // threads unwind too.
                sched.fail(format!("model thread 0 panicked: {}", panic_msg(payload)));
            }
        }
        sched.join_os_threads();
        set_current(None);
        let (failed, schedule) = {
            let g = sched.lock();
            (g.failed.clone(), g.schedule.clone())
        };
        if let Some(msg) = failed {
            panic!("loom shim: model failed on interleaving #{iterations}:\n  {msg}");
        }
        match next_replay(&schedule) {
            Some(r) => replay = r,
            None => break,
        }
    }
    if cfg.log {
        eprintln!("loom shim: explored {iterations} interleavings");
    }
}

fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Report a controlled (non-root) thread's panic as a model failure.
pub(crate) fn thread_panicked(
    sched: &Arc<Scheduler>,
    me: usize,
    payload: Box<dyn std::any::Any + Send>,
) {
    if payload.downcast_ref::<ModelAbort>().is_some() {
        return;
    }
    sched.fail(format!(
        "model thread {me} panicked: {}",
        panic_msg(payload.as_ref())
    ));
}
