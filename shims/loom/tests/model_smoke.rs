//! Self-tests for the loom shim's deterministic explorer. These run in every
//! build (the shim is dual-mode and does not need `--cfg gpnm_loom` itself).

use std::collections::HashSet;
use std::sync::Mutex as StdMutex;

use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::{model_with, Config};

fn small() -> Config {
    let mut cfg = Config::from_env();
    cfg.max_preemptions = 2;
    cfg
}

/// Store-buffer litmus under sequential consistency: with
/// `t1: X=1; r1=Y` and `t2: Y=1; r2=X`, every interleaving yields
/// (r1, r2) ∈ {(0,1), (1,0), (1,1)} and never (0,0) — and a bounded but
/// exhaustive explorer must see all three.
#[test]
fn explores_all_sc_outcomes() {
    let seen: &'static StdMutex<HashSet<(usize, usize)>> =
        Box::leak(Box::new(StdMutex::new(HashSet::new())));
    model_with(small(), move || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
        let t1 = loom::thread::spawn(move || {
            x1.store(1, Ordering::SeqCst);
            y1.load(Ordering::SeqCst)
        });
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t2 = loom::thread::spawn(move || {
            y2.store(1, Ordering::SeqCst);
            x2.load(Ordering::SeqCst)
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            (r1, r2) != (0, 0),
            "store-buffer outcome impossible under SC"
        );
        seen.lock().unwrap().insert((r1, r2));
    });
    let seen = seen.lock().unwrap();
    for want in [(0, 1), (1, 0), (1, 1)] {
        assert!(
            seen.contains(&want),
            "outcome {want:?} never explored; saw {seen:?}"
        );
    }
}

/// A racy read-modify-write (load then store) must be caught: some
/// interleaving loses an increment and the final assertion fails.
#[test]
#[should_panic(expected = "model failed")]
fn detects_lost_update() {
    model_with(small(), || {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    });
}

/// The same counter guarded by a mutex is correct in every interleaving.
#[test]
fn mutex_serializes_increments() {
    model_with(small(), || {
        let n = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    *n.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
}

/// Classic AB-BA lock ordering: the explorer must find the deadlock.
#[test]
#[should_panic(expected = "deadlock")]
fn detects_lock_order_deadlock() {
    model_with(small(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = loom::thread::spawn(move || {
            let _ga = a1.lock().unwrap();
            let _gb = b1.lock().unwrap();
        });
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = loom::thread::spawn(move || {
            let _gb = b2.lock().unwrap();
            let _ga = a2.lock().unwrap();
        });
        let _ = t1.join();
        let _ = t2.join();
    });
}

/// Condvar handoff: the consumer always observes the produced value; no
/// interleaving loses the wakeup (wait re-checks its predicate, and the
/// scheduler's park/release is atomic).
#[test]
fn condvar_handoff_never_loses_wakeup() {
    model_with(small(), || {
        let cell = Arc::new((Mutex::new(None::<u32>), Condvar::new()));
        let producer = {
            let cell = Arc::clone(&cell);
            loom::thread::spawn(move || {
                let (mx, cv) = &*cell;
                *mx.lock().unwrap() = Some(7);
                cv.notify_one();
            })
        };
        let (mx, cv) = &*cell;
        let mut slot = mx.lock().unwrap();
        while slot.is_none() {
            slot = cv.wait(slot).unwrap();
        }
        assert_eq!(*slot, Some(7));
        drop(slot);
        producer.join().unwrap();
    });
}

/// A spin-wait on a flag set by another thread terminates under the model
/// (spin hints yield, and yielded threads only resume after others run).
#[test]
fn spin_wait_terminates() {
    model_with(small(), || {
        let flag = Arc::new(AtomicBool::new(false));
        let setter = {
            let flag = Arc::clone(&flag);
            loom::thread::spawn(move || {
                flag.store(true, Ordering::Release);
            })
        };
        while !flag.load(Ordering::Acquire) {
            loom::hint::spin_loop();
        }
        setter.join().unwrap();
    });
}

/// Outside `model()`, the shimmed types behave as plain std primitives.
#[test]
fn dual_mode_plain_use() {
    let n = AtomicUsize::new(1);
    n.fetch_add(2, Ordering::SeqCst);
    assert_eq!(n.load(Ordering::SeqCst), 3);
    let m = Mutex::new(5);
    {
        let mut g = m.lock().unwrap();
        *g += 1;
    }
    assert_eq!(*m.lock().unwrap(), 6);
    let h = loom::thread::spawn(|| 41 + 1);
    assert_eq!(h.join().unwrap(), 42);
}
