//! Subscriber dispatch: the process-global default, thread-scoped
//! overrides, and the thread-local span stack.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use crate::span::Id;
use crate::subscriber::{Event, Metadata, Subscriber};

/// Count of installed subscribers (1 for the global default, +1 per live
/// `with_default` scope on any thread). The disabled fast path is a single
/// relaxed load of this counter.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// The process-global default subscriber.
static GLOBAL: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

thread_local! {
    /// Thread-scoped subscriber overrides (`subscriber::with_default`).
    static SCOPED: RefCell<Vec<Arc<dyn Subscriber>>> = const { RefCell::new(Vec::new()) };
    /// The thread-local span stack: entered-but-not-exited span ids,
    /// innermost last. Gives spans and events their contextual parent.
    static SPAN_STACK: RefCell<Vec<Id>> = const { RefCell::new(Vec::new()) };
}

/// True if any subscriber (global or thread-scoped anywhere) is installed.
/// This is the only work a disabled `span!`/`event!` does.
#[inline]
pub fn enabled() -> bool {
    // RELAXED: monotonic gate flag — a stale read makes one span a no-op
    // (or dispatches to a subscriber being torn down, which still sees a
    // coherent Arc); no ordering with other data is required.
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// The subscriber a new span or event on this thread dispatches to:
/// the innermost `with_default` scope, else the global default.
pub(crate) fn current_subscriber() -> Option<Arc<dyn Subscriber>> {
    let scoped = SCOPED.with(|s| s.borrow().last().cloned());
    if scoped.is_some() {
        return scoped;
    }
    GLOBAL.read().expect("tracing dispatch poisoned").clone()
}

/// Install `sub` only if no global default exists yet (upstream
/// `set_global_default` semantics).
pub(crate) fn try_install_global(sub: Arc<dyn Subscriber>) -> Result<(), ()> {
    let mut slot = GLOBAL.write().expect("tracing dispatch poisoned");
    if slot.is_some() {
        return Err(());
    }
    *slot = Some(sub);
    // RELAXED: gate counter only (see `enabled`); the RwLock write is the
    // synchronization point for the subscriber itself.
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

pub(crate) fn install_global(sub: Option<Arc<dyn Subscriber>>) -> Option<Arc<dyn Subscriber>> {
    let mut slot = GLOBAL.write().expect("tracing dispatch poisoned");
    let had = slot.is_some();
    let installing = sub.is_some();
    let prev = std::mem::replace(&mut *slot, sub);
    match (had, installing) {
        // RELAXED: the gate counter orders nothing; the RwLock write above
        // is the synchronization point for the subscriber itself.
        (false, true) => drop(ACTIVE.fetch_add(1, Ordering::Relaxed)),
        // RELAXED: as above.
        (true, false) => drop(ACTIVE.fetch_sub(1, Ordering::Relaxed)),
        _ => {}
    }
    prev
}

pub(crate) fn push_scoped(sub: Arc<dyn Subscriber>) {
    SCOPED.with(|s| s.borrow_mut().push(sub));
    // RELAXED: gate counter only (see `enabled`).
    ACTIVE.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn pop_scoped() {
    SCOPED.with(|s| s.borrow_mut().pop());
    // RELAXED: gate counter only (see `enabled`).
    ACTIVE.fetch_sub(1, Ordering::Relaxed);
}

/// The id of the innermost entered span on this thread, if any.
pub fn current_span() -> Option<Id> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

pub(crate) fn push_span(id: Id) {
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
}

pub(crate) fn pop_span(id: Id) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        debug_assert_eq!(stack.last(), Some(&id), "span exits must nest");
        // Entered guards are RAII so exits nest lexically; pop the top.
        stack.pop();
    });
}

/// Dispatch an event to the current subscriber (macro plumbing; call sites
/// use [`event!`](crate::event)).
pub fn dispatch_event(metadata: Metadata, fields: &[(&'static str, crate::field::Value)]) {
    if let Some(sub) = current_subscriber() {
        if sub.enabled(&metadata) {
            let event = Event {
                metadata,
                parent: current_span(),
                fields,
            };
            sub.event(&event);
        }
    }
}
