//! Structured field values attached to spans and events.

/// A structured field value. Upstream tracing visits fields through a
/// `Visit` trait; the shim eagerly converts them into this enum when (and
/// only when) a subscriber is active.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer (from `u8`..`u64`/`usize`).
    U64(u64),
    /// A signed integer (from `i8`..`i64`/`isize`).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A static string (the common case for strategy tags and kinds).
    Static(&'static str),
    /// An owned string.
    Str(String),
}

impl Value {
    /// Render the value in JSON syntax (numbers bare, strings quoted with
    /// the minimal escapes the exporters need).
    pub fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    // JSON has no NaN/Inf literals; stringify the oddballs.
                    format!("\"{v}\"")
                }
            }
            Value::Bool(v) => v.to_string(),
            Value::Static(s) => format!("\"{}\"", escape(s)),
            Value::Str(s) => format!("\"{}\"", escape(s)),
        }
    }

    /// The value as a display string (no quoting).
    pub fn to_display(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => format!("{v}"),
            Value::Bool(v) => v.to_string(),
            Value::Static(s) => (*s).to_string(),
            Value::Str(s) => s.clone(),
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

macro_rules! from_unsigned {
    ($($t:ty),*) => { $(impl From<$t> for Value {
        fn from(v: $t) -> Self { Value::U64(v as u64) }
    })* };
}
macro_rules! from_signed {
    ($($t:ty),*) => { $(impl From<$t> for Value {
        fn from(v: $t) -> Self { Value::I64(v as i64) }
    })* };
}
from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<u128> for Value {
    /// Saturating: the tick clocks are `u128` nanoseconds but never exceed
    /// `u64::MAX` (584 years) in practice.
    fn from(v: u128) -> Self {
        Value::U64(u64::try_from(v).unwrap_or(u64::MAX))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Static(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
