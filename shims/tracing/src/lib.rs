//! Offline stand-in for the [`tracing`](https://docs.rs/tracing) crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of tracing's API that the workspace uses: [`span!`] and
//! [`event!`] macros with structured `key = value` fields, a thread-local
//! span stack that gives spans and events a contextual parent, and a
//! pluggable [`Subscriber`] that observes span lifecycles and events.
//! `gpnm-telemetry` provides the concrete subscribers (a span collector
//! feeding the Chrome trace / summary exporters); this crate is only the
//! instrumentation surface.
//!
//! # Implemented API subset
//!
//! - [`span!`] / [`trace_span!`] / [`debug_span!`] / [`info_span!`] —
//!   create a [`Span`]; `span.enter()` returns an RAII guard that exits the
//!   span on drop. An explicit parent overrides the contextual one with the
//!   upstream `span!(parent: &other, ...)` syntax.
//! - [`event!`] — a point-in-time record with the same field syntax, parented
//!   to the current span.
//! - [`Subscriber`] + [`subscriber::set_global_default`] — process-wide
//!   dispatch, and [`subscriber::with_default`] for a thread-scoped one.
//! - [`field::Value`] — the structured field payload (integers, floats,
//!   booleans, strings).
//!
//! # Deviations from upstream
//!
//! - Fields are eagerly converted to [`field::Value`] when a subscriber is
//!   active (upstream visits them lazily); with no subscriber the field
//!   expressions are **not evaluated** at all, which is the "near-zero cost
//!   when disabled" contract — a disabled span or event is two relaxed
//!   atomic loads.
//! - [`subscriber::replace_global_default`] exists (upstream's global is
//!   write-once): the offline replay harness and tests swap collectors
//!   between runs in one process.
//!
//! Swapping this shim for the real crate is the usual one-line change in the
//! root `[workspace.dependencies]`; call sites use the upstream macro syntax.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod dispatch;
pub mod field;
pub mod span;
pub mod subscriber;

pub use span::{Entered, Id, Span};
pub use subscriber::{Attributes, Event, Metadata, Subscriber};

/// Verbosity level of a span or event, coarsest (`ERROR`) to finest
/// (`TRACE`). The shim dispatches every level to the subscriber and lets it
/// filter via [`Subscriber::enabled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// The finest level: per-update detail inside a tick.
    TRACE,
    /// Diagnostic detail: per-phase and per-pattern work.
    DEBUG,
    /// High-level milestones: one span per tick, one per shard.
    INFO,
    /// Something surprising but recoverable.
    WARN,
    /// An error the caller will also see through a `Result`.
    ERROR,
}

impl Level {
    /// The level's canonical upper-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::TRACE => "TRACE",
            Level::DEBUG => "DEBUG",
            Level::INFO => "INFO",
            Level::WARN => "WARN",
            Level::ERROR => "ERROR",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Create a [`Span`]. Mirrors upstream `tracing::span!`:
///
/// ```
/// use tracing::{span, Level};
/// let s = span!(Level::INFO, "tick", updates = 3usize);
/// let _g = s.enter();
/// let child = span!(Level::DEBUG, "reduce");
/// drop(child);
/// ```
///
/// `span!(parent: &other_span, Level::INFO, "name", ...)` pins an explicit
/// parent instead of the thread-local contextual one — the form the pool
/// fan-out sites use to keep cross-thread nesting intact.
#[macro_export]
macro_rules! span {
    (parent: $parent:expr, $lvl:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        if $crate::dispatch::enabled() {
            $crate::Span::new(
                $crate::Metadata { name: $name, level: $lvl },
                $crate::span::Parent::Explicit($crate::span::parent_id(&$parent)),
                &[$((stringify!($key), $crate::field::Value::from($val))),*],
            )
        } else {
            $crate::Span::disabled()
        }
    }};
    ($lvl:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        if $crate::dispatch::enabled() {
            $crate::Span::new(
                $crate::Metadata { name: $name, level: $lvl },
                $crate::span::Parent::Contextual,
                &[$((stringify!($key), $crate::field::Value::from($val))),*],
            )
        } else {
            $crate::Span::disabled()
        }
    }};
}

/// Record a point-in-time [`Event`](subscriber::Event), parented to the
/// current span. Mirrors upstream `tracing::event!`:
///
/// ```
/// use tracing::{event, Level};
/// event!(Level::DEBUG, "cache_evict", pages = 2u64);
/// ```
#[macro_export]
macro_rules! event {
    ($lvl:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        if $crate::dispatch::enabled() {
            $crate::dispatch::dispatch_event(
                $crate::Metadata { name: $name, level: $lvl },
                &[$((stringify!($key), $crate::field::Value::from($val))),*],
            );
        }
    }};
}

/// `span!(Level::TRACE, ...)` shorthand, mirroring upstream.
#[macro_export]
macro_rules! trace_span {
    ($($tt:tt)*) => { $crate::span!($crate::Level::TRACE, $($tt)*) };
}

/// `span!(Level::DEBUG, ...)` shorthand, mirroring upstream.
#[macro_export]
macro_rules! debug_span {
    ($($tt:tt)*) => { $crate::span!($crate::Level::DEBUG, $($tt)*) };
}

/// `span!(Level::INFO, ...)` shorthand, mirroring upstream.
#[macro_export]
macro_rules! info_span {
    ($($tt:tt)*) => { $crate::span!($crate::Level::INFO, $($tt)*) };
}
