//! The [`Subscriber`] trait and installation entry points.

use std::sync::Arc;

use crate::field::Value;
use crate::span::Id;
use crate::{dispatch, Level};

/// Static description of a span or event: its name and level.
#[derive(Debug, Clone, Copy)]
pub struct Metadata {
    /// The span or event name (a string literal at the call site).
    pub name: &'static str,
    /// Verbosity level.
    pub level: Level,
}

/// Everything known about a span at creation time.
pub struct Attributes<'a> {
    /// Name and level.
    pub metadata: Metadata,
    /// The parent span id: explicit if the call site pinned one, else the
    /// innermost entered span on the creating thread.
    pub parent: Option<Id>,
    /// Structured fields, in call-site order.
    pub fields: &'a [(&'static str, Value)],
}

/// A point-in-time record, parented to the current span.
pub struct Event<'a> {
    /// Name and level.
    pub metadata: Metadata,
    /// The innermost entered span on the emitting thread, if any.
    pub parent: Option<Id>,
    /// Structured fields, in call-site order.
    pub fields: &'a [(&'static str, Value)],
}

/// Observes span lifecycles and events. Mirrors the upstream trait shape:
/// the subscriber allocates span ids and is called on enter/exit/event.
pub trait Subscriber: Send + Sync {
    /// Filter hook: return `false` to make spans/events with this metadata
    /// inert at creation time. Defaults to recording everything.
    fn enabled(&self, metadata: &Metadata) -> bool {
        let _ = metadata;
        true
    }

    /// A span was created; allocate and return its id.
    fn new_span(&self, attrs: &Attributes<'_>) -> Id;

    /// The span was entered on the calling thread.
    fn enter(&self, id: Id);

    /// The span was exited on the calling thread.
    fn exit(&self, id: Id);

    /// An event was recorded.
    fn event(&self, event: &Event<'_>);
}

/// Error returned by [`set_global_default`] when a default is already set.
#[derive(Debug)]
pub struct SetGlobalDefaultError;

impl std::fmt::Display for SetGlobalDefaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("a global default subscriber has already been set")
    }
}

impl std::error::Error for SetGlobalDefaultError {}

/// Install the process-wide default subscriber. Mirrors upstream: errors if
/// one is already installed (use [`replace_global_default`] to swap).
pub fn set_global_default<S>(subscriber: S) -> Result<(), SetGlobalDefaultError>
where
    S: Subscriber + 'static,
{
    dispatch::try_install_global(Arc::new(subscriber)).map_err(|()| SetGlobalDefaultError)
}

/// Shim extension (upstream's global is write-once): replace the global
/// default — `None` uninstalls — returning the previous subscriber. Lets
/// the replay harness and tests swap collectors between runs in one
/// process. Callers coordinate concurrent replacement themselves.
pub fn replace_global_default(
    subscriber: Option<Arc<dyn Subscriber>>,
) -> Option<Arc<dyn Subscriber>> {
    dispatch::install_global(subscriber)
}

/// Run `f` with `subscriber` installed as this thread's default (shadowing
/// the global one), uninstalling it afterwards. Mirrors upstream
/// `with_default`; spans created on *other* threads (e.g. pool workers)
/// still see the global default.
pub fn with_default<S, T>(subscriber: S, f: impl FnOnce() -> T) -> T
where
    S: Subscriber + 'static,
{
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            dispatch::pop_scoped();
        }
    }
    dispatch::push_scoped(Arc::new(subscriber));
    let _guard = Guard;
    f()
}
