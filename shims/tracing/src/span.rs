//! Spans: named, field-carrying regions of execution with RAII enter/exit.

use std::sync::Arc;

use crate::dispatch;
use crate::field::Value;
use crate::subscriber::{Attributes, Metadata, Subscriber};

/// An opaque span identifier, allocated by the [`Subscriber`] when the span
/// is created (mirrors upstream `span::Id`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Id(u64);

impl Id {
    /// Construct an id from its raw value.
    pub fn from_u64(v: u64) -> Self {
        Id(v)
    }

    /// The raw id value.
    pub fn into_u64(self) -> u64 {
        self.0
    }
}

/// How a new span picks its parent (macro plumbing).
pub enum Parent {
    /// The innermost entered span on the creating thread, if any.
    Contextual,
    /// A caller-pinned parent — `span!(parent: &span, ...)`. This is how
    /// work fanned out to pool threads stays nested under the span that
    /// spawned it even though the worker's own stack is empty.
    Explicit(Option<Id>),
}

/// Extract a span's id for `span!(parent: ...)` (macro plumbing).
pub fn parent_id(span: &Span) -> Option<Id> {
    span.id()
}

struct Live {
    id: Id,
    /// The subscriber that allocated `id`; kept on the span so enter/exit
    /// pair with the same subscriber even if the global default is swapped
    /// mid-span.
    sub: Arc<dyn Subscriber>,
}

/// A handle on a span. Created by the [`span!`](macro@crate::span) macro;
/// [`Span::enter`] marks this thread as inside the span until the returned
/// guard drops. A disabled span (no subscriber, or filtered by
/// [`Subscriber::enabled`]) is inert.
pub struct Span {
    live: Option<Live>,
}

impl Span {
    /// Create a span through the current subscriber (macro plumbing; call
    /// sites use [`span!`](macro@crate::span)).
    pub fn new(metadata: Metadata, parent: Parent, fields: &[(&'static str, Value)]) -> Self {
        let Some(sub) = dispatch::current_subscriber() else {
            return Span::disabled();
        };
        if !sub.enabled(&metadata) {
            return Span::disabled();
        }
        let parent = match parent {
            Parent::Contextual => dispatch::current_span(),
            Parent::Explicit(p) => p,
        };
        let attrs = Attributes {
            metadata,
            parent,
            fields,
        };
        let id = sub.new_span(&attrs);
        Span {
            live: Some(Live { id, sub }),
        }
    }

    /// A span that records nothing.
    pub fn disabled() -> Self {
        Span { live: None }
    }

    /// This span's id, if it is live.
    pub fn id(&self) -> Option<Id> {
        self.live.as_ref().map(|l| l.id)
    }

    /// True if no subscriber is recording this span.
    pub fn is_disabled(&self) -> bool {
        self.live.is_none()
    }

    /// Enter the span: this thread is inside it until the guard drops.
    pub fn enter(&self) -> Entered<'_> {
        if let Some(live) = &self.live {
            live.sub.enter(live.id);
            dispatch::push_span(live.id);
        }
        Entered { span: self }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.live {
            Some(l) => write!(f, "Span({})", l.id.into_u64()),
            None => f.write_str("Span(disabled)"),
        }
    }
}

/// RAII guard returned by [`Span::enter`]; exits the span on drop.
#[must_use = "dropping the guard immediately exits the span"]
pub struct Entered<'a> {
    span: &'a Span,
}

impl Drop for Entered<'_> {
    fn drop(&mut self) {
        if let Some(live) = &self.span.live {
            dispatch::pop_span(live.id);
            live.sub.exit(live.id);
        }
    }
}
