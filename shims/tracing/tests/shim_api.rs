//! API-surface tests for the tracing shim: dispatch, the thread-local span
//! stack, field capture, and the disabled fast path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tracing::field::Value;
use tracing::subscriber::{replace_global_default, set_global_default, with_default};
use tracing::{event, span, Attributes, Event, Id, Level, Subscriber};

/// Records every call it sees, allocating sequential span ids.
#[derive(Default)]
struct Recorder {
    next: AtomicU64,
    log: Mutex<Vec<String>>,
}

impl Recorder {
    fn lines(&self) -> Vec<String> {
        self.log.lock().unwrap().clone()
    }
    fn push(&self, line: String) {
        self.log.lock().unwrap().push(line);
    }
}

impl Subscriber for Recorder {
    fn new_span(&self, attrs: &Attributes<'_>) -> Id {
        // RELAXED: test-local id allocator, no ordering needed.
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        let fields: Vec<String> = attrs
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={}", v.to_display()))
            .collect();
        self.push(format!(
            "new {} id={id} parent={:?} [{}]",
            attrs.metadata.name,
            attrs.parent.map(Id::into_u64),
            fields.join(",")
        ));
        Id::from_u64(id)
    }
    fn enter(&self, id: Id) {
        self.push(format!("enter {}", id.into_u64()));
    }
    fn exit(&self, id: Id) {
        self.push(format!("exit {}", id.into_u64()));
    }
    fn event(&self, event: &Event<'_>) {
        let fields: Vec<String> = event
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={}", v.to_display()))
            .collect();
        self.push(format!(
            "event {} parent={:?} [{}]",
            event.metadata.name,
            event.parent.map(Id::into_u64),
            fields.join(",")
        ));
    }
}

#[test]
fn disabled_spans_and_events_are_inert_and_do_not_evaluate_fields() {
    // No subscriber installed on this thread, and field expressions must
    // not even run on the disabled path.
    let evaluated = std::cell::Cell::new(false);
    let observe = || {
        evaluated.set(true);
        7u64
    };
    let s = span!(Level::INFO, "quiet", cost = observe());
    assert!(s.is_disabled());
    assert!(s.id().is_none());
    let _g = s.enter();
    event!(Level::INFO, "quiet_event", cost = observe());
    assert!(!evaluated.get(), "disabled telemetry evaluated its fields");
}

#[test]
fn with_default_records_nesting_and_fields() {
    let rec = Arc::new(Recorder::default());
    let rec2 = rec.clone();
    struct Fwd(Arc<Recorder>);
    impl Subscriber for Fwd {
        fn new_span(&self, a: &Attributes<'_>) -> Id {
            self.0.new_span(a)
        }
        fn enter(&self, id: Id) {
            self.0.enter(id)
        }
        fn exit(&self, id: Id) {
            self.0.exit(id)
        }
        fn event(&self, e: &Event<'_>) {
            self.0.event(e)
        }
    }
    with_default(Fwd(rec2), || {
        let outer = span!(Level::INFO, "outer", k = 8usize);
        let og = outer.enter();
        let inner = span!(Level::DEBUG, "inner", tag = "fast");
        let ig = inner.enter();
        event!(Level::TRACE, "probe", hops = 3u32, ratio = 0.5f64);
        drop(ig);
        drop(og);
    });
    let lines = rec.lines();
    assert_eq!(
        lines,
        vec![
            "new outer id=1 parent=None [k=8]",
            "enter 1",
            "new inner id=2 parent=Some(1) [tag=fast]",
            "enter 2",
            "event probe parent=Some(2) [hops=3,ratio=0.5]",
            "exit 2",
            "exit 1",
        ]
    );
}

#[test]
fn explicit_parent_overrides_the_contextual_stack() {
    let rec = Arc::new(Recorder::default());
    struct Fwd(Arc<Recorder>);
    impl Subscriber for Fwd {
        fn new_span(&self, a: &Attributes<'_>) -> Id {
            self.0.new_span(a)
        }
        fn enter(&self, id: Id) {
            self.0.enter(id)
        }
        fn exit(&self, id: Id) {
            self.0.exit(id)
        }
        fn event(&self, e: &Event<'_>) {
            self.0.event(e)
        }
    }
    with_default(Fwd(rec.clone()), || {
        let a = span!(Level::INFO, "a");
        let b = span!(Level::INFO, "b");
        let _bg = b.enter();
        // Created while inside `b`, but pinned to `a` — the pool fan-out
        // shape where the worker thread's own stack is unrelated.
        let child = span!(parent: a, Level::INFO, "child");
        let _cg = child.enter();
    });
    let lines = rec.lines();
    assert!(lines
        .iter()
        .any(|l| l == "new child id=3 parent=Some(1) []"));
}

#[test]
fn global_default_set_replace_and_clear() {
    // One test owns the global slot (others use with_default) so parallel
    // test threads cannot interfere with it.
    let rec = Arc::new(Recorder::default());
    struct Fwd(Arc<Recorder>);
    impl Subscriber for Fwd {
        fn new_span(&self, a: &Attributes<'_>) -> Id {
            self.0.new_span(a)
        }
        fn enter(&self, id: Id) {
            self.0.enter(id)
        }
        fn exit(&self, id: Id) {
            self.0.exit(id)
        }
        fn event(&self, e: &Event<'_>) {
            self.0.event(e)
        }
    }
    set_global_default(Fwd(rec.clone())).expect("first install succeeds");
    assert!(
        set_global_default(Fwd(rec.clone())).is_err(),
        "second set_global_default must fail like upstream"
    );
    // Spans on a fresh thread see the global default.
    std::thread::spawn(|| {
        let s = span!(Level::INFO, "cross_thread");
        let _g = s.enter();
    })
    .join()
    .unwrap();
    assert!(rec.lines().iter().any(|l| l.contains("new cross_thread")));

    let prev = replace_global_default(None);
    assert!(prev.is_some());
    let s = span!(Level::INFO, "after_clear");
    assert!(s.is_disabled());
}

#[test]
fn value_json_rendering_escapes_and_numbers() {
    assert_eq!(Value::from(3usize).to_json(), "3");
    assert_eq!(Value::from(-4i64).to_json(), "-4");
    assert_eq!(Value::from(true).to_json(), "true");
    assert_eq!(Value::from("a\"b\\c").to_json(), "\"a\\\"b\\\\c\"");
    assert_eq!(Value::from(1.5f64).to_json(), "1.5");
    assert_eq!(Value::from(f64::NAN).to_json(), "\"NaN\"");
    assert_eq!(
        Value::from(u128::from(u64::MAX) + 10).to_json(),
        u64::MAX.to_string()
    );
}
