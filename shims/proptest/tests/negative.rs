//! The failure path: a false property must fail, report inputs, and
//! greedily minimize `Vec` inputs.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    #[should_panic(expected = "proptest case")]
    fn false_property_fails(n in 0usize..100) {
        // False for every input, so this trips even under PROPTEST_CASES=1.
        prop_assert!(n >= 100, "n was {}", n);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn panicking_property_fails(n in 10usize..100) {
        let v = [0u8; 3];
        let _ = v[n]; // out of bounds -> panic, must be reported with inputs
    }

    /// Shrinking proof: the property fails whenever the vector contains a
    /// 7. Greedy element-dropping must minimize any failing vector to
    /// exactly `[7]`, which the expected panic message pins.
    #[test]
    #[should_panic(expected = "minimized inputs:\n  v = [7]")]
    fn failing_vec_minimizes_to_single_culprit(v in proptest::collection::vec(0u8..10, 0..24)) {
        prop_assert!(!v.contains(&7), "contains a 7: {:?}", v);
    }
}
