//! The failure path: a false property must fail and report inputs.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    #[should_panic(expected = "proptest case")]
    fn false_property_fails(n in 0usize..100) {
        // False for every input, so this trips even under PROPTEST_CASES=1.
        prop_assert!(n >= 100, "n was {}", n);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn panicking_property_fails(n in 10usize..100) {
        let v = [0u8; 3];
        let _ = v[n]; // out of bounds -> panic, must be reported with inputs
    }
}
