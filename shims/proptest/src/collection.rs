//! Collection strategies (`proptest::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::Range;

/// Admissible element counts for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "collection size range is empty");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s of `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
