//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of proptest's API this workspace uses: the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_flat_map`, integer-range and tuple
//! strategies, [`collection::vec`], `prop_oneof!`, `any`, the `proptest!`
//! test-definition macro, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **Greedy `Vec`-only shrinking.** A failing case is re-run with `Vec`
//!   inputs greedily losing elements (see [`shrink`], including the
//!   min-length caveat); the report shows both the minimized and the
//!   original inputs. Non-`Vec` inputs are reported verbatim — unlike
//!   real proptest's value-tree shrinking, scalars stay fixed. Inputs
//!   must be `Clone` + `Debug`.
//! * **Deterministic seeding.** Cases are generated from a fixed seed
//!   stream; set `PROPTEST_SEED` to explore a different stream.
//! * **`PROPTEST_CASES`** overrides the per-test case count. Unlike real
//!   proptest (where an explicit `with_cases` beats the env var), the env
//!   var wins unconditionally here so CI can bound runtime with one knob.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod collection;
pub mod shrink;
pub mod strategy;
pub mod test_runner;

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[doc(hidden)]
pub mod rng {
    /// SplitMix64 stream used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Start a stream at `seed`.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Stream seeded from `PROPTEST_SEED` (hex or decimal) when set,
        /// else a fixed default mixed with the test name.
        pub fn for_test(test_name: &str) -> Self {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| {
                    s.strip_prefix("0x")
                        .map_or_else(|| s.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
                })
                .unwrap_or(0x5EED_CAFE_F00D_D00D);
            let mut h = base;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
            }
            TestRng::new(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fail the current case unless `cond` holds (non-panicking assert).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assert_eq failed:\n  left: {:?}\n right: {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assert_eq failed: {}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    l,
                    r
                ),
            ));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        @cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let cases = config.resolved_cases();
            let mut rng = $crate::rng::TestRng::for_test(stringify!($name));
            // Each strategy expression is evaluated exactly once, into a
            // tuple that both generates cases (the tuple Strategy impl
            // draws components left to right, matching per-arg order) and
            // anchors the body closure's parameter type via `bind_case`,
            // so shrinking can replay the body with candidate inputs.
            let strategies = ($($strat,)+);
            let body = $crate::shrink::bind_case(
                &strategies,
                |args| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    let ($($arg,)+) = args;
                    $body
                    ::std::result::Result::Ok(())
                },
            );
            for case in 0..cases {
                let ($($arg,)+) = $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let original = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}"),+),
                    $(&$arg),+
                );
                let first_failure = $crate::shrink::run_case(
                    || body(($(::std::clone::Clone::clone(&$arg),)+)),
                );
                let ::std::option::Option::Some(mut message) = first_failure else {
                    continue;
                };
                // Greedy shrink: Vec inputs lose elements while the
                // failure persists; other inputs stay fixed (shrinking
                // them could leave their strategy's range and fabricate
                // artifact failures). Budgeted, panic-hook silenced.
                $(
                    #[allow(unused_mut)]
                    let mut $arg = $arg;
                )+
                let mut budget: usize = 512;
                {
                    let _quiet = $crate::shrink::SilencedPanics::install();
                    loop {
                        let mut improved = false;
                        $crate::__shrink_each!(
                            (body, budget, message, improved)
                            all($($arg),+)
                            todo($($arg),+)
                        );
                        if !improved || budget == 0 {
                            break;
                        }
                    }
                }
                panic!(
                    "proptest case {}/{} failed: {}\nminimized inputs:{}\noriginal inputs:{}",
                    case + 1,
                    cases,
                    message,
                    format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}"),+),
                        $(&$arg),+
                    ),
                    original
                );
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    (@cfg($cfg:expr)) => {};
}

/// Internal: one greedy shrink sweep. Peels the `todo` list one input at a
/// time; for the head input, repeatedly adopts the first candidate that
/// still fails (re-running the body with all other inputs fixed), until no
/// candidate fails or the budget runs out. Mutating `$head` in place works
/// because it is also named in `all(..)`, so the next body call sees it.
#[doc(hidden)]
#[macro_export]
macro_rules! __shrink_each {
    (
        ($body:ident, $budget:ident, $message:ident, $improved:ident)
        all($($all:ident),+)
        todo()
    ) => {};
    (
        ($body:ident, $budget:ident, $message:ident, $improved:ident)
        all($($all:ident),+)
        todo($head:ident $(, $rest:ident)*)
    ) => {
        loop {
            let candidates = {
                #[allow(unused_imports)]
                use $crate::shrink::{GreedyShrink, NoShrink};
                (&$crate::shrink::ShrinkWrap(&$head)).shrink_candidates()
            };
            let mut adopted = false;
            for candidate in candidates {
                if $budget == 0 {
                    break;
                }
                $budget -= 1;
                let previous = ::std::mem::replace(&mut $head, candidate);
                match $crate::shrink::run_case(
                    || $body(($(::std::clone::Clone::clone(&$all),)+)),
                ) {
                    ::std::option::Option::Some(m) => {
                        $message = m;
                        adopted = true;
                        $improved = true;
                        break;
                    }
                    ::std::option::Option::None => {
                        $head = previous;
                    }
                }
            }
            if !adopted {
                break;
            }
        }
        $crate::__shrink_each! {
            ($body, $budget, $message, $improved)
            all($($all),+)
            todo($($rest),*)
        }
    };
}
