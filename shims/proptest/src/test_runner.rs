//! Test-runner configuration and failure type.

use std::fmt;

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test, before env override.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this workspace keeps the default
        // modest so `cargo test` stays fast, and CI pins PROPTEST_CASES.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count actually run: the `PROPTEST_CASES` environment
    /// variable when set, else `self.cases`.
    ///
    /// Deliberate difference from real proptest: there, the env var only
    /// feeds `Config::default()` and an explicit `with_cases` wins; here
    /// the env var wins unconditionally, so CI can cap every test block's
    /// runtime with one variable. When migrating to the real crate, audit
    /// `with_cases` call sites if CI still needs that cap.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert!`-family assertion did not hold.
    Fail(String),
}

impl TestCaseError {
    /// Construct an assertion failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Self-test: the macro pipeline generates, asserts, and loops.
        #[test]
        fn macro_roundtrip(n in 1usize..50, v in crate::collection::vec(0u8..10, 0..8)) {
            prop_assert!((1..50).contains(&n));
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }
}
