//! Composable random-value generators (the `Strategy` trait and friends).

use crate::rng::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase this strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy; cheap to clone.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice among same-valued strategies; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the already-boxed arms. Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo + (rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Full-range strategy for `T`; obtain via [`any`].
pub struct Any<T>(PhantomData<T>);

/// Strategy over the full value range of `T` (mirrors `proptest::arbitrary`).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = TestRng::new(99);
        let strat = (2usize..10).prop_flat_map(|n| {
            (0u8..4, crate::collection::vec(0..n, 1..5)).prop_map(move |(l, v)| (n, l, v))
        });
        for _ in 0..500 {
            let (n, l, v) = strat.generate(&mut rng);
            assert!((2..10).contains(&n));
            assert!(l < 4);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let u = crate::prop_oneof![
            (0u8..1).prop_map(|_| 'a'),
            (0u8..1).prop_map(|_| 'b'),
            (0u8..1).prop_map(|_| 'c'),
        ];
        let mut rng = TestRng::new(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
