//! Greedy input shrinking for failing cases.
//!
//! Real proptest shrinks through strategy value trees; this shim generates
//! values directly, so it shrinks the *generated inputs* instead, with a
//! deliberately narrow rule: only `Vec` inputs shrink, by dropping
//! elements (first half, second half, then each single element), greedily
//! re-running the case and keeping any candidate that still fails.
//! Dropping elements from a `collection::vec` output keeps every
//! *element* valid; the vector's *length* can shrink below the strategy's
//! minimum, so a test body that requires a minimum length (e.g. indexes
//! `v[2]` under `vec(.., 3..10)`) can see its shrink adopt an artifact
//! out-of-range failure — write bodies to tolerate shorter vectors (all
//! in-tree property tests interpret specs defensively). Scalars are left
//! untouched entirely, because halving them could leave their strategy's
//! range the same way with no defensive idiom available.
//!
//! This is exactly the greedy batch-shrinking the update-stream property
//! tests need: their inputs are `Vec`s of update specs, and a failing
//! 40-op stream typically minimizes to a handful of ops.
//!
//! The `Vec`-vs-everything-else dispatch uses autoref specialization (the
//! `anyhow!`-style method-probe trick), so the `proptest!` macro can ask
//! any input for candidates without naming its type.

use crate::test_runner::TestCaseError;

/// Borrow wrapper the shrink method probe dispatches on.
pub struct ShrinkWrap<'a, T>(pub &'a T);

/// Shrink rule for `Vec` inputs: candidate lists with elements dropped.
/// Resolved at method-probe step 0 (`&ShrinkWrap<Vec<T>>` by value), so it
/// wins over the [`NoShrink`] fallback.
pub trait GreedyShrink<T> {
    /// One round of smaller-but-maybe-still-failing candidates, most
    /// aggressive first.
    fn shrink_candidates(&self) -> Vec<T>;
}

impl<T: Clone> GreedyShrink<Vec<T>> for ShrinkWrap<'_, Vec<T>> {
    fn shrink_candidates(&self) -> Vec<Vec<T>> {
        let v = self.0;
        let n = v.len();
        let mut out = Vec::new();
        if n > 1 {
            out.push(v[n / 2..].to_vec()); // drop the first half
            out.push(v[..n / 2].to_vec()); // drop the second half
        }
        for i in 0..n {
            let mut candidate = v.clone();
            candidate.remove(i);
            out.push(candidate);
        }
        out
    }
}

/// Fallback for non-`Vec` inputs: no candidates (the input stays fixed).
/// Resolved one autoref later than [`GreedyShrink`], so it only applies
/// when the specific impl doesn't.
pub trait NoShrink<T> {
    /// Always empty.
    fn shrink_candidates(&self) -> Vec<T>;
}

impl<T> NoShrink<T> for &ShrinkWrap<'_, T> {
    fn shrink_candidates(&self) -> Vec<T> {
        Vec::new()
    }
}

/// Pin a case closure's parameter to the value tuple of the strategy
/// tuple it will be fed from, so the `proptest!` macro can define the
/// re-runnable body *before* the first generated inputs exist (closure
/// parameters used with method calls cannot wait for call-site inference).
pub fn bind_case<S, F>(_strategies: &S, f: F) -> F
where
    S: crate::strategy::Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    f
}

/// Run one case attempt, normalizing assertion failures and panics into
/// `Some(message)` (`None` = the case passed).
pub fn run_case<F>(f: F) -> Option<String>
where
    F: FnOnce() -> Result<(), TestCaseError>,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(Ok(())) => None,
        Ok(Err(e)) => Some(e.to_string()),
        Err(payload) => Some(
            payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_owned()),
        ),
    }
}

thread_local! {
    /// Whether the *current thread* is inside a shrink phase.
    static SHRINKING: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once, permanently) a delegating panic hook that mutes panics
/// only on threads currently shrinking. The previously registered hook —
/// whatever it was — keeps handling every other thread's panics, so a
/// concurrently failing unrelated test still prints its diagnostics, and
/// no restore step can race with it.
fn ensure_delegating_hook() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SHRINKING.with(std::cell::Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Guard that mutes panic-hook output for the current thread while
/// shrinking re-runs an already-failing body (dozens of *expected* panics
/// would otherwise spam backtraces). Muting is per-thread, so concurrent
/// tests — shrinking or not — are unaffected. Dropping the guard
/// un-mutes the thread; the delegating hook stays installed (it is
/// transparent when no thread is shrinking).
pub struct SilencedPanics {
    _private: (),
}

impl SilencedPanics {
    /// Mark this thread as shrinking.
    pub fn install() -> Self {
        ensure_delegating_hook();
        SHRINKING.with(|s| s.set(true));
        SilencedPanics { _private: () }
    }
}

impl Drop for SilencedPanics {
    fn drop(&mut self) {
        SHRINKING.with(|s| s.set(false));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_candidates_cover_halves_and_singles() {
        let v = vec![1, 2, 3, 4];
        let wrap = ShrinkWrap(&v);
        let cands = wrap.shrink_candidates();
        assert!(cands.contains(&vec![3, 4]), "first half dropped");
        assert!(cands.contains(&vec![1, 2]), "second half dropped");
        assert!(cands.contains(&vec![2, 3, 4]), "single drops");
        assert!(cands.contains(&vec![1, 2, 3]));
        assert_eq!(cands.len(), 2 + 4);
        let empty: Vec<u8> = Vec::new();
        assert!(ShrinkWrap(&empty).shrink_candidates().is_empty());
    }

    #[test]
    fn autoref_dispatch_separates_vec_from_scalar() {
        use super::{GreedyShrink, NoShrink};
        let v = vec![1u8, 2];
        let vec_cands = ShrinkWrap(&v).shrink_candidates();
        assert!(!vec_cands.is_empty());
        let s = 17usize;
        let scalar_cands: Vec<usize> = (&ShrinkWrap(&s)).shrink_candidates();
        assert!(scalar_cands.is_empty(), "scalars never shrink");
    }

    #[test]
    fn run_case_normalizes_outcomes() {
        assert_eq!(run_case(|| Ok(())), None);
        assert_eq!(
            run_case(|| Err(TestCaseError::fail("boom"))),
            Some("boom".to_owned())
        );
        let _quiet = SilencedPanics::install();
        let msg = run_case(|| -> Result<(), TestCaseError> { panic!("kaput") });
        assert_eq!(msg, Some("kaput".to_owned()));
    }
}
