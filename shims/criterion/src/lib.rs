//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim keeps the
//! workspace's `[[bench]]` targets compiling (`cargo bench --no-run` is a CI
//! gate) and, when actually run, times each benchmark with a plain
//! wall-clock sampling loop and prints `name  time: [mean]` lines. It makes
//! no statistical claims — swap in real criterion via the workspace
//! manifest when registry access exists to get confidence intervals,
//! outlier rejection, and HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, criterion's grouped-id constructor.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the timing loop.
pub struct Bencher<'a> {
    cfg: &'a SamplingConfig,
    report_label: String,
}

impl Bencher<'_> {
    /// Time `f`, printing a mean-per-iteration line.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call warms caches and gives an iteration estimate.
        let start = Instant::now();
        black_box(f());
        let est = start.elapsed().max(Duration::from_nanos(1));

        let budget = self.cfg.measurement_time;
        let samples = self.cfg.sample_size.max(1) as u32;
        let per_sample = (budget / samples).max(Duration::from_micros(10));
        let iters_per_sample = (per_sample.as_nanos() / est.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let deadline = Instant::now() + budget;
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            total += t0.elapsed();
            iters += iters_per_sample;
            if Instant::now() >= deadline {
                break;
            }
        }
        let mean = Duration::from_nanos((total.as_nanos() / u128::from(iters.max(1))) as u64);
        println!("{:<60} time: [{:?}]", self.report_label, mean);
    }
}

#[derive(Debug, Clone)]
struct SamplingConfig {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    cfg: SamplingConfig,
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            cfg: self.cfg.clone(),
            _parent: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut b = Bencher {
            cfg: &self.cfg,
            report_label: id.label,
        };
        f(&mut b);
        self
    }
}

/// A named group sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: SamplingConfig,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n;
        self
    }

    /// Set the per-benchmark wall-clock measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; this shim's single untimed warmup
    /// call is not budget-driven.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut b = Bencher {
            cfg: &self.cfg,
            report_label: format!("{}/{}", self.name, id.label),
        };
        f(&mut b);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            cfg: &self.cfg,
            report_label: format!("{}/{}", self.name, id.label),
        };
        f(&mut b, input);
        self
    }

    /// Close the group (kept for API compatibility; a no-op here).
    pub fn finish(self) {}
}

/// Define a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; this
            // shim has no CLI and ignores them.
            $($group();)+
        }
    };
}
