//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` with the 0.8 call shape
//! (`scope(|s| { s.spawn(|_| ...); }).expect(...)`) implemented on
//! `std::thread::scope`, which has been stable since Rust 1.63 and is what
//! crossbeam users are advised to migrate to. One semantic difference: when
//! a spawned closure panics, `std::thread::scope` re-raises the panic at the
//! end of the scope instead of surfacing it as an `Err`, so the caller's
//! `.expect(...)` is never reached — the process still fails with the worker
//! panic, which is the behavior every call site in this workspace wants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Scoped-thread API compatible with `crossbeam::thread`.
pub mod thread {
    /// Result alias matching `crossbeam::thread::scope`'s return type.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle; closures spawned through it may borrow from the
    /// enclosing stack frame.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope (crossbeam
        /// passes it so workers can spawn sub-workers); it is safe to ignore.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u32, 2, 3, 4];
        let sums = std::sync::Mutex::new(Vec::new());
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                let sums = &sums;
                s.spawn(move |_| sums.lock().unwrap().push(chunk.iter().sum::<u32>()));
            }
        })
        .expect("workers joined");
        let mut got = sums.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![3, 7]);
    }
}
