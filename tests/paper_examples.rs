//! End-to-end golden tests of every concrete number the paper publishes
//! for its running example, exercised through the public facade.
//!
//! Per-crate unit tests assert the same tables at module level; this file
//! is the single place a reviewer can read top-to-bottom against the
//! paper (Tables I, III–IX, Figure 3, Examples 2/7/8/9/10).

use ua_gpnm::distance::{apsp_matrix, IncrementalIndex, PartitionedIndex, INF};
use ua_gpnm::graph::paper::{fig1, fig4, TABLE_III, TABLE_IX, TABLE_V, TABLE_VI, TABLE_VIII};
use ua_gpnm::matcher::match_graph;
use ua_gpnm::prelude::*;
use ua_gpnm::updates::{affected_for, candidates_for};

#[test]
fn table_i_node_matching_results() {
    let f = fig1();
    let slen = apsp_matrix(&f.graph);
    let m = match_graph(&f.pattern, &f.graph, &slen, MatchSemantics::Simulation);
    assert_eq!(m.matches_of(f.p_pm).collect::<Vec<_>>(), vec![f.pm1, f.pm2]);
    assert_eq!(m.matches_of(f.p_se).collect::<Vec<_>>(), vec![f.se1, f.se2]);
    assert_eq!(m.matches_of(f.p_s).collect::<Vec<_>>(), vec![f.s1]);
    assert_eq!(m.matches_of(f.p_te).collect::<Vec<_>>(), vec![f.te1, f.te2]);
}

#[test]
fn table_iii_slen_matrix() {
    let f = fig1();
    let m = apsp_matrix(&f.graph);
    for (i, row) in TABLE_III.iter().enumerate() {
        for (j, &expected) in row.iter().enumerate() {
            assert_eq!(
                m.get(NodeId(i as u32), NodeId(j as u32)),
                expected,
                "Table III [{i}][{j}]"
            );
        }
    }
}

#[test]
fn table_iv_candidate_sets() {
    let f = fig1();
    let slen = apsp_matrix(&f.graph);
    let iq = match_graph(&f.pattern, &f.graph, &slen, MatchSemantics::Simulation);
    let up1 = PatternUpdate::InsertEdge {
        from: f.p_pm,
        to: f.p_te,
        bound: Bound::Hops(2),
    };
    let c1 = candidates_for(&f.pattern, &f.graph, &slen, &iq, &up1);
    assert_eq!(c1.can_rn.iter().collect::<Vec<_>>(), vec![f.pm2, f.te2]);
    let up2 = PatternUpdate::InsertEdge {
        from: f.p_s,
        to: f.p_te,
        bound: Bound::Hops(4),
    };
    let c2 = candidates_for(&f.pattern, &f.graph, &slen, &iq, &up2);
    assert_eq!(c2.can_rn.iter().collect::<Vec<_>>(), vec![f.te2]);
    // Type I: Can(UP1) ⊇ Can(UP2) => UP1 eliminates UP2.
    assert!(c1.can_rn.is_superset_of(&c2.can_rn));
}

#[test]
fn tables_v_vi_vii_incremental_slen() {
    // UD1 = insert e(SE1, TE2); UD2 = insert e(DB1, S1), each against the
    // original graph, exactly as Example 8 presents them.
    let f = fig1();
    let mut idx = IncrementalIndex::build(&f.graph);

    let ud1 = affected_for(
        &f.graph,
        &mut idx,
        &DataUpdate::InsertEdge {
            from: f.se1,
            to: f.te2,
        },
    )
    .expect("UD1 is valid");
    // Table VII row 1: all eight nodes affected.
    assert_eq!(ud1.affected.len(), 8);

    let ud2 = affected_for(
        &f.graph,
        &mut idx,
        &DataUpdate::InsertEdge {
            from: f.db1,
            to: f.s1,
        },
    )
    .expect("UD2 is valid");
    // Table VII row 2.
    assert_eq!(
        ud2.affected.iter().collect::<Vec<_>>(),
        vec![f.pm1, f.se2, f.s1, f.te1, f.db1]
    );
    // Type II: Aff(UD1) ⊇ Aff(UD2) => UD1 eliminates UD2 (Example 8).
    assert!(ud1.affected.is_superset_of(&ud2.affected));

    // Tables V and VI: the full SLen_new matrices.
    let mut g1 = f.graph.clone();
    g1.add_edge(f.se1, f.te2).unwrap();
    let m1 = apsp_matrix(&g1);
    for (i, row) in TABLE_V.iter().enumerate() {
        for (j, &expected) in row.iter().enumerate() {
            assert_eq!(
                m1.get(NodeId(i as u32), NodeId(j as u32)),
                expected,
                "Table V [{i}][{j}]"
            );
        }
    }
    let mut g2 = f.graph.clone();
    g2.add_edge(f.db1, f.s1).unwrap();
    let m2 = apsp_matrix(&g2);
    for (i, row) in TABLE_VI.iter().enumerate() {
        for (j, &expected) in row.iter().enumerate() {
            assert_eq!(
                m2.get(NodeId(i as u32), NodeId(j as u32)),
                expected,
                "Table VI [{i}][{j}]"
            );
        }
    }
}

#[test]
fn tables_viii_ix_partitioned_distances() {
    let f = fig4();
    let idx = PartitionedIndex::build_serial(&f.graph);
    let mut row = vec![INF; f.graph.slot_count()];
    for (i, &si) in f.se.iter().enumerate() {
        idx.compose_row(si, &mut row);
        for (j, &sj) in f.se.iter().enumerate() {
            assert_eq!(row[sj.index()], TABLE_VIII[i][j], "Table VIII [{i}][{j}]");
        }
        for (j, &tj) in f.te.iter().enumerate() {
            assert_eq!(row[tj.index()], TABLE_IX[i][j], "Table IX [{i}][{j}]");
        }
    }
}

#[test]
fn example_10_eh_tree_and_example_2_squery() {
    // The full Example 2 batch through the UA-GPNM engine: Fig. 3's tree
    // has UD1 as the only root (3 eliminated), and SQuery == IQuery.
    let f = fig1();
    let mut engine = GpnmEngine::new(
        f.graph.clone(),
        f.pattern.clone(),
        MatchSemantics::Simulation,
    );
    let iquery = engine.initial_query().clone();
    let mut batch = UpdateBatch::new();
    batch.push(PatternUpdate::InsertEdge {
        from: f.p_pm,
        to: f.p_te,
        bound: Bound::Hops(2),
    });
    batch.push(PatternUpdate::InsertEdge {
        from: f.p_s,
        to: f.p_te,
        bound: Bound::Hops(4),
    });
    batch.push(DataUpdate::InsertEdge {
        from: f.se1,
        to: f.te2,
    });
    batch.push(DataUpdate::InsertEdge {
        from: f.db1,
        to: f.s1,
    });
    let stats = engine
        .subsequent_query(&batch, Strategy::UaGpnm)
        .expect("Example 2 batch is valid");
    assert_eq!(
        stats.eliminated, 3,
        "UD2, UP1, UP2 eliminated; UD1 survives"
    );
    assert_eq!(stats.repair_calls, 1, "one repair pass for the one root");
    assert_eq!(engine.result(), &iquery, "SQuery == IQuery (Example 2)");
}

#[test]
fn every_strategy_reproduces_example_2() {
    let f = fig1();
    for strategy in Strategy::ALL {
        let mut engine = GpnmEngine::new(
            f.graph.clone(),
            f.pattern.clone(),
            MatchSemantics::Simulation,
        );
        let iquery = engine.initial_query().clone();
        let mut batch = UpdateBatch::new();
        batch.push(PatternUpdate::InsertEdge {
            from: f.p_pm,
            to: f.p_te,
            bound: Bound::Hops(2),
        });
        batch.push(PatternUpdate::InsertEdge {
            from: f.p_s,
            to: f.p_te,
            bound: Bound::Hops(4),
        });
        batch.push(DataUpdate::InsertEdge {
            from: f.se1,
            to: f.te2,
        });
        batch.push(DataUpdate::InsertEdge {
            from: f.db1,
            to: f.s1,
        });
        engine
            .subsequent_query(&batch, strategy)
            .expect("Example 2 batch is valid");
        assert_eq!(
            engine.result(),
            &iquery,
            "{strategy} must leave the result unchanged"
        );
    }
}
