//! Structural assertions on the experiment harness: the paper's expected
//! *shape* in timing-independent metrics (timing itself is asserted only
//! weakly — CI machines are noisy; EXPERIMENTS.md records measured times).

use ua_gpnm::prelude::*;
use ua_gpnm::workload::{
    generate_batch, generate_pattern, generate_social_graph, run_experiment, Dataset,
    ExperimentConfig, PatternConfig, SocialGraphConfig, UpdateProtocol,
};

#[test]
fn smoke_grid_produces_full_cells() {
    let cfg = ExperimentConfig::smoke(Dataset::EmailEuCore);
    let results = run_experiment(&cfg);
    assert_eq!(results.len(), 4, "one cell per strategy");
    for cell in &results {
        assert!(cell.runs > 0);
        assert!(cell.avg_time.as_nanos() > 0);
    }
}

#[test]
fn elimination_strategies_issue_fewer_repair_calls() {
    let (graph, interner) = generate_social_graph(&SocialGraphConfig {
        nodes: 300,
        edges: 1800,
        labels: 10,
        communities: 10,
        seed: 3,
        ..Default::default()
    });
    let pattern = generate_pattern(
        &PatternConfig {
            nodes: 6,
            edges: 6,
            bound_range: (1, 3),
            seed: 3,
        },
        &interner,
    );
    let mut base = GpnmEngine::new(graph, pattern, MatchSemantics::Simulation);
    base.initial_query();
    let protocol = UpdateProtocol::from_scale(8, 60);
    let batch = generate_batch(base.graph(), base.pattern(), &interner, &protocol, 17);

    let mut calls = std::collections::HashMap::new();
    let mut results = Vec::new();
    for strategy in Strategy::PAPER {
        let mut engine = base.clone();
        if strategy.partitioned() {
            engine.prepare_partition();
        }
        let stats = engine.subsequent_query(&batch, strategy).expect("valid");
        calls.insert(strategy.name(), stats.repair_calls);
        results.push(engine.result().clone());
    }
    // All strategies agree on the answer.
    for w in results.windows(2) {
        assert_eq!(w[0], w[1]);
    }
    // INC repairs once per update; UA repairs once per EH-Tree root; EH is
    // in between (pattern updates all survive).
    assert!(calls["UA-GPNM"] <= calls["EH-GPNM"], "{calls:?}");
    assert!(calls["EH-GPNM"] <= calls["INC-GPNM"], "{calls:?}");
    assert!(
        calls["INC-GPNM"] >= batch.len() - 4,
        "INC must pay ~one call per update: {calls:?}"
    );
    assert_eq!(
        calls["UA-GPNM"], calls["UA-GPNM-NoPar"],
        "same tree, same roots"
    );
}

#[test]
fn eliminated_counts_grow_with_batch_size() {
    let (graph, interner) = generate_social_graph(&SocialGraphConfig {
        nodes: 300,
        edges: 1800,
        labels: 10,
        communities: 10,
        seed: 5,
        ..Default::default()
    });
    let pattern = generate_pattern(
        &PatternConfig {
            nodes: 6,
            edges: 6,
            bound_range: (1, 3),
            seed: 5,
        },
        &interner,
    );
    let mut base = GpnmEngine::new(graph, pattern, MatchSemantics::Simulation);
    base.initial_query();
    let mut last = 0usize;
    let mut grew = false;
    for scale in [20usize, 60, 120] {
        let protocol = UpdateProtocol::from_scale(6, scale);
        let batch = generate_batch(base.graph(), base.pattern(), &interner, &protocol, 23);
        let mut engine = base.clone();
        let stats = engine
            .subsequent_query(&batch, Strategy::UaGpnmNoPar)
            .expect("valid");
        if stats.eliminated > last {
            grew = true;
        }
        last = stats.eliminated;
    }
    assert!(grew, "larger batches must find more eliminations");
}
