//! Concurrency stress for the read front-end, generic over
//! [`PatternHost`]: N reader threads spin on `read_view` snapshots *while*
//! the host ticks, and every `(result, result_version)` any reader ever
//! observes must be **bitwise one of the committed epochs** — never a torn
//! or in-progress state. Subscription streams are folded over their base
//! views and must reconstruct the final published result exactly (gaps
//! surface as `Lagged` records that keep the fold exact).
//!
//! The same harness runs against a single `GpnmService` and a 4-shard
//! `GpnmCluster` with parallel fan-out — the cluster must publish each
//! tick atomically across shards. The deterministic tests scale via
//! `STRESS_READERS` / `STRESS_TICKS` (the CI `concurrency-stress` job
//! elevates them); the proptest variant scales via `PROPTEST_CASES`.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use ua_gpnm::prelude::*;
use ua_gpnm::workload::{
    generate_batch, generate_pattern, generate_social_graph, PatternConfig, SocialGraphConfig,
    UpdateProtocol,
};

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn stress_graph(seed: u64, nodes: usize) -> (DataGraph, LabelInterner) {
    generate_social_graph(&SocialGraphConfig {
        nodes,
        edges: nodes * 4,
        labels: 8,
        communities: 8,
        seed,
        ..Default::default()
    })
}

/// The generic harness. Registers three standing patterns on `host`,
/// subscribes to each, spawns `readers` threads spinning on pinned
/// `read_view`s, streams `ticks` generated batches through `apply`, then:
///
/// 1. every observed `(handle, result_version)` must carry the bitwise
///    result and tick the writer committed under that version (the
///    epoch-swap safety property);
/// 2. every subscription stream, folded over its base view via
///    `MatchDelta::apply_to`, must reconstruct the final live view
///    (ordered, gap-free delivery — with `Lagged` coalescing kept exact);
/// 3. deregistration closes streams with a final `Closed` and turns the
///    handle into a typed error, not a panic.
fn stress_host<H: PatternHost>(
    mut host: H,
    interner: &LabelInterner,
    seed: u64,
    readers: usize,
    ticks: usize,
) {
    let mut handles = Vec::new();
    for i in 0..3u64 {
        let pattern = generate_pattern(
            &PatternConfig {
                nodes: 4,
                edges: 4,
                bound_range: (1, 3),
                seed: seed.wrapping_add(i),
            },
            interner,
        );
        handles.push(
            host.register_pattern(pattern, MatchSemantics::Simulation)
                .expect("non-empty pattern"),
        );
    }

    // Committed epochs: per handle, version -> (result, tick) as the
    // writer sees them right after each commit. Readers may only ever
    // observe entries of this map.
    let mut committed: HashMap<(u64, u64), (MatchResult, u64)> = HashMap::new();
    let commit = |host: &H, committed: &mut HashMap<(u64, u64), (MatchResult, u64)>| {
        for &h in &handles {
            let id: HandleId = h.into();
            let v = host.result_version(h).expect("live handle");
            committed.insert(
                (id.raw(), v),
                (host.result(h).expect("live handle").clone(), host.tick()),
            );
        }
    };
    commit(&host, &mut committed);

    // Subscribe before the first tick so streams are gap-free from the
    // base views down.
    let mut streams = Vec::new();
    for &h in &handles {
        let base = host.read_view(h).expect("published at registration");
        let sub = host.subscribe(h).expect("live handle");
        streams.push((h, sub, base.result.clone(), base.result_version));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let ids: Vec<HandleId> = handles.iter().map(|&h| h.into()).collect();
    let reader_threads: Vec<_> = (0..readers)
        .map(|r| {
            let front = host.reader();
            let stop = Arc::clone(&stop);
            let ids = ids.clone();
            std::thread::spawn(move || {
                let pinned: Vec<_> = ids
                    .iter()
                    .map(|&id| front.pinned(id).expect("live handle"))
                    .collect();
                let mut seen: HashMap<(u64, u64), Arc<ReadView>> = HashMap::new();
                // Stagger the starting handle per reader so the threads
                // don't lockstep over the same cell.
                let mut i = r;
                loop {
                    let k = i % pinned.len();
                    let view = pinned[k].view();
                    match seen.entry((ids[k].raw(), view.result_version)) {
                        Entry::Occupied(prev) => assert!(
                            Arc::ptr_eq(prev.get(), &view) || **prev.get() == *view,
                            "two views under one version differ (seed {seed})"
                        ),
                        Entry::Vacant(slot) => {
                            slot.insert(view);
                        }
                    }
                    i += 1;
                    // Observe-then-check: even if the writer finishes
                    // before this thread's first iteration, it records at
                    // least one view.
                    if stop.load(Ordering::Acquire) {
                        return seen;
                    }
                }
            })
        })
        .collect();

    let protocol = UpdateProtocol::from_scale(0, 8);
    for t in 0..ticks {
        let batch = generate_batch(
            host.graph(),
            &PatternGraph::new(),
            interner,
            &protocol,
            seed.wrapping_add(1_000 + t as u64),
        );
        let report = host.apply(&batch).expect("generated batches are valid");
        assert_eq!(report.deltas().len(), handles.len());
        commit(&host, &mut committed);
    }
    stop.store(true, Ordering::Release);

    for thread in reader_threads {
        let seen = thread.join().expect("reader thread");
        assert!(!seen.is_empty(), "reader observed nothing (seed {seed})");
        for ((raw, version), view) in seen {
            let (result, tick) = committed.get(&(raw, version)).unwrap_or_else(|| {
                panic!("observed uncommitted v{version} of pattern #{raw} (seed {seed})")
            });
            assert_eq!(
                &view.result, result,
                "observed view of pattern #{raw} v{version} is not bitwise \
                 the committed epoch (seed {seed})"
            );
            assert_eq!(view.tick, *tick, "view stamped with the wrong tick");
        }
    }

    // Fold each stream over its base: exact reconstruction, in order,
    // without gaps — a `Lagged` record accounts for every skipped version.
    for (h, sub, mut folded, mut version) in streams {
        while let Some(event) = sub.try_recv() {
            match event {
                SubEvent::Delta(delta) => {
                    assert_eq!(delta.result_version, version + 1, "gap in stream");
                    version = delta.result_version;
                    folded = delta.apply_to(&folded);
                }
                SubEvent::Lagged {
                    missed_versions,
                    delta,
                } => {
                    assert_eq!(
                        delta.result_version,
                        version + missed_versions,
                        "lagged record does not account for every missed version"
                    );
                    version = delta.result_version;
                    folded = delta.apply_to(&folded);
                }
                SubEvent::Closed => break,
            }
        }
        let live = host.read_view(h).expect("live handle");
        assert_eq!(live.result_version, version, "stream stopped early");
        assert_eq!(
            folded, live.result,
            "folded stream diverges from the live view (seed {seed})"
        );
    }

    // Deregistration: streams close, further reads are typed errors.
    let victim = handles[0];
    let orphan = host.subscribe(victim).expect("still live");
    host.deregister(victim).expect("still live");
    assert!(matches!(orphan.try_recv(), Some(SubEvent::Closed)));
    // Closed is sticky — every subsequent poll keeps saying so.
    assert!(matches!(orphan.try_recv(), Some(SubEvent::Closed)));
    assert!(host.read_view(victim).is_err());
    assert!(host.subscribe(victim).is_err());
    // The survivors still serve.
    let survivor = handles[1];
    assert!(host.read_view(survivor).is_ok());
}

#[test]
fn service_readers_only_observe_committed_epochs() {
    let readers = env_or("STRESS_READERS", 4);
    let ticks = env_or("STRESS_TICKS", 10);
    let (graph, interner) = stress_graph(42, 600);
    let service = GpnmService::builder()
        .backend(BackendKind::Sparse)
        .build(graph)
        .expect("sparse is never refused");
    stress_host(service, &interner, 42, readers, ticks);
}

/// Same harness over the out-of-core paged backend with a deliberately
/// tiny hot-row cache: every tick's repairs and the reader spins force
/// promotions, CAS races, and clock evictions *while* the epoch-swap
/// publication is exercised — the stressy end of what the loom models in
/// `crates/distance/tests/loom_paged_cache.rs` check exhaustively at
/// 2 threads.
#[test]
fn paged_backend_readers_only_observe_committed_epochs() {
    let readers = env_or("STRESS_READERS", 4);
    let ticks = env_or("STRESS_TICKS", 10);
    let (graph, interner) = stress_graph(44, 600);
    let service = GpnmService::builder()
        .backend(BackendKind::Paged)
        .cache_budget_mb(0.25)
        .refresh_threads(2)
        .build(graph)
        .expect("paged accepts any graph");
    stress_host(service, &interner, 44, readers, ticks);
}

#[test]
fn cluster_readers_only_observe_committed_epochs() {
    let readers = env_or("STRESS_READERS", 4);
    let ticks = env_or("STRESS_TICKS", 10);
    let (graph, interner) = stress_graph(43, 600);
    let cluster = GpnmCluster::builder()
        .shards(4)
        .backend(BackendKind::Sparse)
        .refresh_threads(2)
        .build(graph)
        .expect("sparse is never refused");
    stress_host(cluster, &interner, 43, readers, ticks);
}

/// Typed-error surface: reads through an unknown handle are
/// `UnknownHandle` on both hosts, and a shard replica inside a cluster
/// (built with `publishing(false)`) refuses direct front-end reads with
/// `ReadFrontDisabled` instead of serving stale views.
#[test]
fn unknown_and_disabled_handles_are_typed_errors() {
    let (graph, interner) = stress_graph(7, 64);
    let pattern = generate_pattern(
        &PatternConfig {
            nodes: 3,
            edges: 3,
            bound_range: (1, 2),
            seed: 7,
        },
        &interner,
    );

    let mut service = GpnmService::builder().build(graph.clone()).unwrap();
    let sh = service
        .register_pattern(pattern.clone(), MatchSemantics::Simulation)
        .unwrap();
    service.deregister(sh).unwrap();
    assert!(matches!(
        service.read_view(sh),
        Err(ServiceError::UnknownHandle(h)) if h == sh
    ));
    assert!(matches!(
        service.subscribe(sh),
        Err(ServiceError::UnknownHandle(_))
    ));

    let mut cluster = GpnmCluster::builder().shards(2).build(graph).unwrap();
    let ch = cluster
        .register_pattern(pattern, MatchSemantics::Simulation)
        .unwrap();
    // The shard replica does not publish its own front — reads go through
    // the cluster so a tick's views swap atomically across shards.
    let shard = &cluster.shards()[cluster.shard_of(ch).unwrap()];
    let inner = shard.handles()[0];
    assert!(!shard.publishing());
    assert!(matches!(
        shard.read_view(inner),
        Err(ServiceError::ReadFrontDisabled)
    ));
    assert!(cluster.read_view(ch).is_ok());
    cluster.deregister(ch).unwrap();
    assert!(matches!(
        cluster.read_view(ch),
        Err(ClusterError::UnknownHandle(h)) if h == ch
    ));
    assert!(matches!(
        cluster.subscribe(ch),
        Err(ClusterError::UnknownHandle(_))
    ));
}

proptest! {
    // Each case runs the full harness twice (service + 2-shard cluster);
    // 4 cases keeps the default run in seconds while PROPTEST_CASES
    // scales it up in the CI concurrency-stress job.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn any_seed_commits_only_whole_epochs(seed in any::<u64>()) {
        let (graph, interner) = stress_graph(seed, 200);
        let service = GpnmService::builder()
            .backend(BackendKind::Sparse)
            .build(graph.clone())
            .expect("sparse is never refused");
        stress_host(service, &interner, seed, 2, 4);

        let cluster = GpnmCluster::builder()
            .shards(2)
            .backend(BackendKind::Sparse)
            .build(graph)
            .expect("sparse is never refused");
        stress_host(cluster, &interner, seed, 2, 4);
    }
}
