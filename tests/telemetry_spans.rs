//! Integration tests of the telemetry span tree: a cluster tick must
//! produce a correctly parented `cluster_tick → shard_tick → tick →
//! refresh → pattern_refresh` hierarchy even though the shard ticks and
//! per-pattern refreshes run on pool worker threads, and running with the
//! subscriber removed must record nothing at all.
//!
//! The global tracing subscriber is process state, so every test body
//! runs under one shared lock.

use std::sync::{Mutex, MutexGuard};

use ua_gpnm::prelude::*;
use ua_gpnm::telemetry::{install_collector, uninstall_collector, SpanData, Trace};
use ua_gpnm::workload::{
    generate_batch, generate_pattern, generate_social_graph, PatternConfig, SocialGraphConfig,
    UpdateProtocol,
};

static SUBSCRIBER_LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    SUBSCRIBER_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn build_cluster(seed: u64) -> (GpnmCluster, ua_gpnm::graph::LabelInterner, PatternGraph) {
    let (graph, interner) = generate_social_graph(&SocialGraphConfig {
        nodes: 400,
        edges: 1600,
        labels: 8,
        communities: 8,
        seed,
        ..Default::default()
    });
    let mut cluster = GpnmCluster::builder()
        .shards(2)
        .refresh_threads(2)
        .build(graph)
        .expect("sparse is never refused");
    let mut first = None;
    for i in 0..2u64 {
        let pattern = generate_pattern(
            &PatternConfig {
                nodes: 4,
                edges: 4,
                bound_range: (1, 3),
                seed: seed + i,
            },
            &interner,
        );
        first.get_or_insert_with(|| pattern.clone());
        cluster
            .register_pattern(pattern, MatchSemantics::Simulation)
            .expect("registration succeeds");
    }
    (cluster, interner, first.expect("two patterns registered"))
}

fn tick_once(
    cluster: &mut GpnmCluster,
    interner: &ua_gpnm::graph::LabelInterner,
    pattern: &PatternGraph,
    seed: u64,
) {
    let protocol = UpdateProtocol::from_scale(0, 20);
    let batch = generate_batch(cluster.graph(), pattern, interner, &protocol, seed);
    cluster.apply(&batch).expect("pre-validated batch applies");
}

/// Walk `span`'s parent chain to the root, returning the names outermost
/// first.
fn ancestry(trace: &Trace, span: &SpanData) -> Vec<&'static str> {
    let mut names = vec![span.name];
    let mut parent = span.parent;
    while let Some(pid) = parent {
        let p = trace
            .spans
            .iter()
            .find(|s| s.id == pid)
            .expect("parent id recorded in the same trace");
        names.push(p.name);
        parent = p.parent;
    }
    names.reverse();
    names
}

#[test]
fn cluster_tick_spans_nest_across_the_pool_fanout() {
    let _guard = serialize();
    let (mut cluster, interner, pattern) = build_cluster(11);
    let collector = install_collector();
    tick_once(&mut cluster, &interner, &pattern, 99);
    uninstall_collector();
    let trace = collector.finish();

    let by_name =
        |name: &str| -> Vec<&SpanData> { trace.spans.iter().filter(|s| s.name == name).collect() };

    let roots = by_name("cluster_tick");
    assert_eq!(roots.len(), 1, "one tick → one cluster_tick root");
    assert_eq!(roots[0].parent, None, "cluster_tick is the root span");

    let shard_spans = by_name("shard_tick");
    assert_eq!(shard_spans.len(), 2, "one shard_tick per shard");
    for shard in &shard_spans {
        assert_eq!(
            shard.parent,
            Some(roots[0].id),
            "shard_tick parents to cluster_tick across the pool spawn"
        );
    }

    let ticks = by_name("tick");
    assert_eq!(ticks.len(), 2, "each shard replica runs one service tick");
    for tick in &ticks {
        let chain = ancestry(&trace, tick);
        assert_eq!(chain, ["cluster_tick", "shard_tick", "tick"]);
    }

    // Both registered patterns refresh; each pattern_refresh must chain
    // through its shard's refresh phase up to the cluster root even when
    // the refresh itself ran on a different worker thread.
    let refreshes = by_name("pattern_refresh");
    assert_eq!(refreshes.len(), 2, "one pattern_refresh per pattern");
    for pr in &refreshes {
        let chain = ancestry(&trace, pr);
        assert_eq!(
            chain,
            [
                "cluster_tick",
                "shard_tick",
                "tick",
                "refresh",
                "pattern_refresh"
            ],
            "explicit parenting must survive the pool fan-out"
        );
        assert!(
            pr.fields.iter().any(|(k, _)| *k == "strategy"),
            "pattern_refresh carries its strategy tag"
        );
    }

    // Every span closed before the drain.
    for span in &trace.spans {
        assert!(span.dur_ns.is_some(), "span {} never exited", span.name);
    }
}

#[test]
fn removed_subscriber_records_nothing() {
    let _guard = serialize();
    let (mut cluster, interner, pattern) = build_cluster(23);

    // Sanity: with a collector installed the tick emits spans and events.
    let collector = install_collector();
    tick_once(&mut cluster, &interner, &pattern, 7);
    uninstall_collector();
    let active = collector.finish();
    assert!(!active.spans.is_empty());

    // With the subscriber removed the same pipeline must record nothing
    // anywhere: a collector installed *afterwards* starts empty, proving
    // the disabled path neither buffers nor leaks spans.
    tick_once(&mut cluster, &interner, &pattern, 8);
    let fresh = install_collector();
    uninstall_collector();
    let silent = fresh.finish();
    assert!(
        silent.spans.is_empty(),
        "disabled tick must record no spans"
    );
    assert!(
        silent.events.is_empty(),
        "disabled tick must record no events"
    );
}
