//! Failure injection: invalid inputs must error early and leave every
//! piece of engine state (graphs, SLen, result) untouched.

use ua_gpnm::graph::paper::fig1;
use ua_gpnm::prelude::*;

fn engine() -> (GpnmEngine, gpnm_graph_fixture::Fig1Handles) {
    let f = fig1();
    let mut e = GpnmEngine::new(
        f.graph.clone(),
        f.pattern.clone(),
        MatchSemantics::Simulation,
    );
    e.initial_query();
    (
        e,
        gpnm_graph_fixture::Fig1Handles {
            pm1: f.pm1,
            se2: f.se2,
            te2: f.te2,
            p_pm: f.p_pm,
            p_te: f.p_te,
        },
    )
}

/// Minimal handle bundle so each test names what it pokes.
mod gpnm_graph_fixture {
    use ua_gpnm::prelude::{NodeId, PatternNodeId};
    pub struct Fig1Handles {
        pub pm1: NodeId,
        pub se2: NodeId,
        pub te2: NodeId,
        pub p_pm: PatternNodeId,
        pub p_te: PatternNodeId,
    }
}

fn assert_unchanged(e: &GpnmEngine, before: &GpnmEngine) {
    assert_eq!(e.graph().node_count(), before.graph().node_count());
    assert_eq!(e.graph().edge_count(), before.graph().edge_count());
    assert_eq!(e.pattern().edge_count(), before.pattern().edge_count());
    assert_eq!(e.result(), before.result());
    assert_eq!(e.slen(), before.slen());
}

#[test]
fn duplicate_data_edge_rejected_atomically() {
    let (mut e, h) = engine();
    let before = e.clone();
    let mut batch = UpdateBatch::new();
    batch.push(DataUpdate::InsertEdge {
        from: h.pm1,
        to: h.se2,
    }); // exists
    for strategy in Strategy::ALL {
        assert!(e.subsequent_query(&batch, strategy).is_err());
        assert_unchanged(&e, &before);
    }
}

#[test]
fn missing_node_delete_rejected() {
    let (mut e, _) = engine();
    let before = e.clone();
    let mut batch = UpdateBatch::new();
    batch.push(DataUpdate::DeleteNode { node: NodeId(4095) });
    assert!(e.subsequent_query(&batch, Strategy::UaGpnm).is_err());
    assert_unchanged(&e, &before);
}

#[test]
fn self_loop_rejected() {
    let (mut e, h) = engine();
    let before = e.clone();
    let mut batch = UpdateBatch::new();
    batch.push(DataUpdate::InsertEdge {
        from: h.te2,
        to: h.te2,
    });
    assert!(e.subsequent_query(&batch, Strategy::IncGpnm).is_err());
    assert_unchanged(&e, &before);
}

#[test]
fn later_invalid_update_rolls_back_whole_batch() {
    // The batch is valid until its last element; nothing may apply.
    let (mut e, h) = engine();
    let before = e.clone();
    let mut batch = UpdateBatch::new();
    batch.push(DataUpdate::InsertEdge {
        from: h.se2,
        to: h.te2,
    }); // fine alone
    batch.push(PatternUpdate::DeleteEdge {
        from: h.p_te,
        to: h.p_pm,
    }); // no such edge
    assert!(e.subsequent_query(&batch, Strategy::EhGpnm).is_err());
    assert_unchanged(&e, &before);
}

#[test]
fn duplicate_pattern_edge_rejected() {
    let (mut e, h) = engine();
    let before = e.clone();
    let mut batch = UpdateBatch::new();
    batch.push(PatternUpdate::InsertEdge {
        from: h.p_pm,
        to: h.p_te,
        bound: Bound::Hops(2),
    });
    batch.push(PatternUpdate::InsertEdge {
        from: h.p_pm,
        to: h.p_te,
        bound: Bound::Hops(3), // duplicate edge, different bound
    });
    assert!(e.subsequent_query(&batch, Strategy::UaGpnmNoPar).is_err());
    assert_unchanged(&e, &before);
}

#[test]
fn zero_bound_pattern_edge_rejected() {
    let (mut e, h) = engine();
    let before = e.clone();
    let mut batch = UpdateBatch::new();
    batch.push(PatternUpdate::InsertEdge {
        from: h.p_pm,
        to: h.p_te,
        bound: Bound::Hops(0),
    });
    assert!(e.subsequent_query(&batch, Strategy::UaGpnm).is_err());
    assert_unchanged(&e, &before);
}

#[test]
fn engine_usable_after_rejection() {
    // A rejected batch must not poison the engine for later valid work.
    let (mut e, h) = engine();
    let mut bad = UpdateBatch::new();
    bad.push(DataUpdate::DeleteNode { node: NodeId(999) });
    assert!(e.subsequent_query(&bad, Strategy::UaGpnm).is_err());

    let mut good = UpdateBatch::new();
    good.push(DataUpdate::InsertEdge {
        from: h.se2,
        to: h.te2,
    });
    let stats = e
        .subsequent_query(&good, Strategy::UaGpnm)
        .expect("valid batch after a rejected one");
    assert!(stats.slen_changes > 0);
    assert_eq!(e.result(), &e.scratch_query());
}
