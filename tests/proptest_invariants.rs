//! Property-based tests of the workspace's load-bearing invariants
//! (DESIGN.md §7).

use proptest::prelude::*;
// Explicit import: both preludes glob-export a `Strategy` (proptest's trait,
// the engine's enum); an explicit use shadows the globs and disambiguates.
use proptest::strategy::Strategy;
use ua_gpnm::distance::{apsp_matrix, IncrementalIndex, PartitionedIndex};
use ua_gpnm::engine::Strategy as QueryStrategy;
use ua_gpnm::prelude::*;
use ua_gpnm::updates::reduce_batch;

/// Compact description of a random labeled digraph.
#[derive(Debug, Clone)]
struct GraphSpec {
    labels_per_node: Vec<u8>,
    edges: Vec<(u8, u8)>,
}

fn graph_spec(max_nodes: usize) -> impl Strategy<Value = GraphSpec> {
    (2..max_nodes).prop_flat_map(move |n| {
        (
            proptest::collection::vec(0u8..4, n),
            proptest::collection::vec((0..n as u8, 0..n as u8), 0..n * 3),
        )
            .prop_map(|(labels_per_node, edges)| GraphSpec {
                labels_per_node,
                edges,
            })
    })
}

fn build_graph(spec: &GraphSpec) -> (DataGraph, LabelInterner) {
    let mut interner = LabelInterner::new();
    let labels: Vec<Label> = (0..4).map(|i| interner.intern(&format!("L{i}"))).collect();
    let mut g = DataGraph::new();
    let ids: Vec<NodeId> = spec
        .labels_per_node
        .iter()
        .map(|&l| g.add_node(labels[l as usize % 4]))
        .collect();
    for &(a, b) in &spec.edges {
        let (u, v) = (ids[a as usize % ids.len()], ids[b as usize % ids.len()]);
        if u != v {
            let _ = g.add_edge(u, v);
        }
    }
    (g, interner)
}

/// A random, always-valid update sequence (interpreted against the
/// evolving graph; out-of-range indices wrap).
#[derive(Debug, Clone)]
enum Op {
    InsertEdge(u8, u8),
    DeleteEdge(u8),
    InsertNode(u8),
    DeleteNode(u8),
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::InsertEdge(a, b)),
            any::<u8>().prop_map(Op::DeleteEdge),
            (0u8..4).prop_map(Op::InsertNode),
            any::<u8>().prop_map(Op::DeleteNode),
        ],
        1..max,
    )
}

/// Interpret ops into a concrete valid batch against `graph`.
fn realize_batch(graph: &DataGraph, interner: &LabelInterner, ops: &[Op]) -> UpdateBatch {
    let mut g = graph.clone();
    let mut batch = UpdateBatch::new();
    for op in ops {
        match *op {
            Op::InsertEdge(a, b) => {
                let live: Vec<NodeId> = g.nodes().collect();
                if live.len() < 2 {
                    continue;
                }
                let u = live[a as usize % live.len()];
                let v = live[b as usize % live.len()];
                if u != v && g.add_edge(u, v).is_ok() {
                    batch.push(DataUpdate::InsertEdge { from: u, to: v });
                }
            }
            Op::DeleteEdge(a) => {
                let edges: Vec<_> = g.edges().collect();
                if edges.is_empty() {
                    continue;
                }
                let (u, v) = edges[a as usize % edges.len()];
                g.remove_edge(u, v).expect("listed edge");
                batch.push(DataUpdate::DeleteEdge { from: u, to: v });
            }
            Op::InsertNode(l) => {
                let label = interner.get(&format!("L{}", l % 4)).expect("interned");
                g.add_node(label);
                batch.push(DataUpdate::InsertNode { label });
            }
            Op::DeleteNode(a) => {
                let live: Vec<NodeId> = g.nodes().collect();
                if live.len() <= 2 {
                    continue;
                }
                let v = live[a as usize % live.len()];
                g.remove_node(v).expect("listed node");
                batch.push(DataUpdate::DeleteNode { node: v });
            }
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incremental index stays exact across arbitrary update
    /// sequences — equivalent to a from-scratch APSP at every step's end.
    #[test]
    fn incremental_index_matches_rebuild(spec in graph_spec(20), ops in ops(12)) {
        let (mut graph, interner) = build_graph(&spec);
        let mut index = IncrementalIndex::build(&graph);
        let batch = realize_batch(&graph, &interner, &ops);
        for update in batch.updates() {
            let Update::Data(du) = update else { continue };
            match *du {
                DataUpdate::InsertEdge { from, to } => {
                    graph.add_edge(from, to).expect("valid");
                    index.commit_insert_edge(from, to);
                }
                DataUpdate::DeleteEdge { from, to } => {
                    graph.remove_edge(from, to).expect("valid");
                    index.commit_delete_edge(&graph, from, to);
                }
                DataUpdate::InsertNode { label } => {
                    graph.add_node(label);
                    index.commit_insert_node(graph.slot_count());
                }
                DataUpdate::DeleteNode { node } => {
                    graph.remove_node(node).expect("valid");
                    index.commit_delete_node(&graph, node);
                }
            }
        }
        prop_assert_eq!(index.matrix(), &apsp_matrix(&graph));
    }

    /// Partitioned composition computes exactly the flat APSP.
    #[test]
    fn partitioned_apsp_is_exact(spec in graph_spec(24)) {
        let (graph, _) = build_graph(&spec);
        let idx = PartitionedIndex::build_serial(&graph);
        prop_assert_eq!(idx.build_matrix_serial(&graph), apsp_matrix(&graph));
    }

    /// Triangle inequality holds on every computed matrix.
    #[test]
    fn apsp_satisfies_triangle_inequality(spec in graph_spec(16)) {
        let (graph, _) = build_graph(&spec);
        let m = apsp_matrix(&graph);
        let n = graph.slot_count();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let (i, j, k) = (NodeId(i as u32), NodeId(j as u32), NodeId(k as u32));
                    let via = ua_gpnm::distance::sat_add(m.get(i, k), m.get(k, j));
                    prop_assert!(m.get(i, j) <= via, "d({i},{j}) > d({i},{k})+d({k},{j})");
                }
            }
        }
    }

    /// The cancellation pre-pass preserves the final graph state.
    #[test]
    fn reduce_batch_preserves_final_state(spec in graph_spec(16), ops in ops(16)) {
        let (graph, interner) = build_graph(&spec);
        let pattern = PatternGraph::new();
        let batch = realize_batch(&graph, &interner, &ops);
        let reduced = reduce_batch(&graph, &pattern, &batch);
        prop_assert!(reduced.len() <= batch.len());

        let mut g_full = graph.clone();
        let mut p_full = pattern.clone();
        batch.apply_all(&mut g_full, &mut p_full).expect("valid batch");
        let mut g_red = graph.clone();
        let mut p_red = pattern.clone();
        reduced.apply_all(&mut g_red, &mut p_red).expect("reduced batch stays valid");
        // Same live nodes, same edges (slot numbering of surviving created
        // nodes is preserved by the reducer's suffix rule).
        let full_nodes: Vec<_> = g_full.nodes().collect();
        let red_nodes: Vec<_> = g_red.nodes().collect();
        prop_assert_eq!(full_nodes, red_nodes);
        let full_edges: Vec<_> = g_full.edges().collect();
        let red_edges: Vec<_> = g_red.edges().collect();
        prop_assert_eq!(full_edges, red_edges);
    }

    /// All five strategies agree with from-scratch recomputation (the
    /// paper-wide equivalence), on data-update-only batches.
    #[test]
    fn strategies_agree(spec in graph_spec(14), ops in ops(8)) {
        let (graph, interner) = build_graph(&spec);
        // Small fixed pattern over the same alphabet.
        let mut pattern = PatternGraph::new();
        let l0 = interner.get("L0").expect("interned");
        let l1 = interner.get("L1").expect("interned");
        let l2 = interner.get("L2").expect("interned");
        let a = pattern.add_node(l0);
        let b = pattern.add_node(l1);
        let c = pattern.add_node(l2);
        pattern.add_edge(a, b, Bound::Hops(2)).expect("fresh");
        pattern.add_edge(b, c, Bound::Hops(3)).expect("fresh");
        let batch = realize_batch(&graph, &interner, &ops);

        let mut reference = GpnmEngine::new(graph.clone(), pattern.clone(), MatchSemantics::Simulation);
        reference.initial_query();
        reference.subsequent_query(&batch, QueryStrategy::Scratch).expect("valid");
        let expected = reference.result().clone();
        for strategy in [QueryStrategy::IncGpnm, QueryStrategy::EhGpnm, QueryStrategy::UaGpnmNoPar, QueryStrategy::UaGpnm] {
            let mut engine = GpnmEngine::new(graph.clone(), pattern.clone(), MatchSemantics::Simulation);
            engine.initial_query();
            engine.subsequent_query(&batch, strategy).expect("valid");
            prop_assert_eq!(engine.result(), &expected, "{} diverged", strategy.name());
        }
    }
}
